"""Named, reproducible random-number streams.

Every stochastic component in the reproduction draws from its own named
stream derived from a single master seed.  This gives two properties the
benchmarks rely on:

* **Reproducibility** — the same master seed always yields the same run.
* **Stream independence** — adding a new random consumer (e.g. a new
  workload) does not perturb the draws seen by existing consumers, so
  A/B experiments stay paired.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect
from itertools import accumulate
from typing import Any, Callable, Dict, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Stable, platform-independent seed for the named child stream.

    Used both for the per-component streams inside one simulation (via
    :class:`RngRegistry`) and by :mod:`repro.sweep` to derive per-run
    master seeds from one sweep-level seed, so a sweep is reproducible
    from a single integer.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Backwards-compatible alias (pre-sweep internal name).
_derive_seed = derive_seed


class RngStream:
    """A named wrapper around :class:`random.Random` with simulation helpers."""

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self._rng = random.Random(seed)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample; ``rate`` is events per unit time."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._rng.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def pareto(self, alpha: float, x_min: float = 1.0) -> float:
        """Pareto sample with scale ``x_min`` (heavy tails for exec times)."""
        return x_min * (1.0 + self._rng.paretovariate(alpha) - 1.0)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, lst: List[Any]) -> None:
        self._rng.shuffle(lst)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._rng.choices(items, weights=weights, k=1)[0]

    def weighted_chooser(self, items: Sequence[T],
                         weights: Sequence[float]) -> Callable[[], T]:
        """Precomputed closure equivalent to :meth:`weighted_choice`.

        ``random.Random.choices`` rebuilds the cumulative-weight table on
        every call; callers picking from a *fixed* distribution per draw
        (client-region choice, QueueLB routing rows) pay that repeatedly.
        The returned closure draws exactly one ``random()`` and bisects a
        table built once — the same algorithm ``choices`` uses
        internally, so the value stream is bit-identical draw for draw.
        """
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        cum = list(accumulate(weights))
        total = cum[-1] + 0.0
        if total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        hi = len(items) - 1
        random_ = self._rng.random
        items = list(items)

        def choose() -> T:
            return items[bisect(cum, random_() * total, 0, hi)]

        return choose

    def poisson(self, lam: float) -> int:
        """Poisson sample via inversion (small lam) or normal approx (large)."""
        if lam < 0:
            raise ValueError(f"lam must be non-negative, got {lam}")
        if lam == 0:
            return 0
        if lam > 500:
            return max(0, int(round(self._rng.gauss(lam, lam ** 0.5))))
        # Knuth inversion.
        import math
        limit = math.exp(-lam)
        k, p = 0, 1.0
        while True:
            p *= self._rng.random()
            if p <= limit:
                return k
            k += 1


class RngRegistry:
    """Factory of named :class:`RngStream` objects from one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return (creating if needed) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = RngStream(name, derive_seed(self.master_seed, name))
        return self._streams[name]
