"""Deterministic discrete-event simulation kernel.

The substrate the entire XFaaS reproduction runs on: a single-threaded
event loop (:class:`Simulator`), generator processes (:func:`spawn`),
shared resources (:class:`Resource`, :class:`Store`), one-shot
:class:`Signal` events, and named reproducible RNG streams.
"""

from .calqueue import CalendarQueue
from .events import EventCancelled, EventQueue, ScheduledEvent, Signal
from .kernel import (
    DEFAULT_QUEUE_BACKEND,
    QUEUE_BACKENDS,
    PeriodicTask,
    SimulationError,
    Simulator,
)
from .process import Process, ProcessKilled, spawn
from .resources import Resource, Store
from .rng import RngRegistry, RngStream, derive_seed
from .simsan import (
    RegionMapProxy,
    SanitizeError,
    SanitizedRngRegistry,
    SanitizedRngStream,
    Sanitizer,
)

__all__ = [
    "CalendarQueue",
    "DEFAULT_QUEUE_BACKEND",
    "EventCancelled",
    "EventQueue",
    "QUEUE_BACKENDS",
    "PeriodicTask",
    "Process",
    "ProcessKilled",
    "RegionMapProxy",
    "Resource",
    "RngRegistry",
    "RngStream",
    "SanitizeError",
    "SanitizedRngRegistry",
    "SanitizedRngStream",
    "Sanitizer",
    "ScheduledEvent",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "derive_seed",
    "spawn",
]
