"""simsan — the opt-in runtime determinism & shard-safety sanitizer.

The static analyses in :mod:`repro.simlint` (SL009–SL012) prove the
*code* never reaches across a shard boundary; simsan checks the same
contract on the *running* simulation.  ``Simulator(sanitize=True)``
(or ``python -m repro simulate --sanitize``) wraps the kernel's RNG
registry and lets platforms wrap their region-keyed maps in checking
proxies that raise :class:`SanitizeError` on:

* **cross-shard direct access** — reading, writing, or deleting a
  region map entry for a region this shard does not own, or drawing
  from a region-qualified RNG stream owned by a foreign region;
* **out-of-order RNG draws** — a stream drawn at a simulation time
  earlier than its previous draw (replay / time-travel bugs);
* **iteration-order-dependent scheduling** — iterating a region map
  whose keys are not in sorted order, the precondition for insertion
  order leaking into event order;
* **lease-protocol violations** — the runtime mirror of simlint's
  SL014 typestate rule: a DurableQ call ACKed or NACKed twice, settled
  both ways, extended after settling, or re-leased after an ACK
  (:class:`LeaseGuard`).  Lease *expiry* stays tolerant, exactly like
  :class:`~repro.core.durableq.DurableQ` itself — at-least-once
  semantics make a late settle of an expired lease a legal no-op.

The hard guarantee is *zero behavioral skew*: every check observes and
forwards, never perturbs.  :class:`SanitizedRngStream` derives the
identical child seed and draws through the identical code paths as
:class:`~repro.sim.rng.RngStream`, so a sanitized run produces a
bit-identical trace digest to the unsanitized run (asserted by
``tests/sim/test_simsan.py``, ``tests/parsim/test_sanitize.py`` and the
CI ``sanitize-smoke`` job).

Ownership scoping mirrors parsim: :meth:`Sanitizer.restrict` pins the
allowed set to a shard's owned regions (``ShardPlatform`` does this),
while the serial platform registers every region unrestricted — there
the sanitizer still enforces draw monotonicity and sorted iteration,
and :meth:`Sanitizer.region_guard` can scope a block temporarily.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    ItemsView,
    KeysView,
    List,
    Optional,
    Protocol,
    Sequence,
    TypeVar,
    ValuesView,
)

from .rng import RngRegistry, RngStream, derive_seed

T = TypeVar("T")


class SanitizeError(RuntimeError):
    """A shard-safety or determinism invariant was violated at runtime."""


class SupportsNow(Protocol):
    """The only piece of the kernel the sanitizer needs: a clock."""

    @property
    def now(self) -> float: ...


class LeaseGuard:
    """Runtime typestate for DurableQ leases (the SL014 FSM, enforced).

    Tracks each call id through ``leased -> {acked | nacked}`` as the
    queue reports protocol events, raising :class:`SanitizeError` on
    the transitions the static rule forbids.  Observation only: the
    guard holds its own table and never touches queue state, so a
    sanitized run's trace digest is bit-identical to a plain run.

    A call id with no recorded state is *tolerated* for every settle
    event — that is the lease-expiry race DurableQ itself treats as a
    no-op — and an expired lease is forgotten entirely, so a second
    scheduler re-leasing and settling the same call stays legal.
    """

    _LEASED = "leased"
    _ACKED = "ACKed"
    _NACKED = "NACKed"

    def __init__(self) -> None:
        self._states: Dict[int, str] = {}

    def _fail(self, queue: str, call_id: int, event: str,
              state: str) -> None:
        raise SanitizeError(
            f"lease-protocol violation on {queue!r}: {event} of call "
            f"{call_id} which is already {state} — each leased call "
            f"settles exactly once (FSM: polled -> acked | nacked)")

    def on_lease(self, queue: str, call_id: int) -> None:
        state = self._states.get(call_id)
        if state == self._LEASED:
            self._fail(queue, call_id, "lease", "leased")
        if state == self._ACKED:
            self._fail(queue, call_id, "lease", self._ACKED)
        # NACKed (redelivery) and unknown (first lease / expired) are
        # the two legal ways back into the leased state.
        self._states[call_id] = self._LEASED

    def on_ack(self, queue: str, call_id: int) -> None:
        state = self._states.get(call_id)
        if state in (self._ACKED, self._NACKED):
            self._fail(queue, call_id, "ACK", state)
        if state is not None:
            self._states[call_id] = self._ACKED

    def on_nack(self, queue: str, call_id: int) -> None:
        state = self._states.get(call_id)
        if state in (self._ACKED, self._NACKED):
            self._fail(queue, call_id, "NACK", state)
        if state is not None:
            self._states[call_id] = self._NACKED

    def on_extend(self, queue: str, call_id: int) -> None:
        state = self._states.get(call_id)
        if state in (self._ACKED, self._NACKED):
            self._fail(queue, call_id, "extend_lease", state)

    def on_expire(self, queue: str, call_id: int) -> None:
        self._states.pop(call_id, None)


class Sanitizer:
    """Shared checking state for one simulation's sanitized run.

    Holds the known region names (for parsing stream owners out of
    region-qualified stream names), the allowed set (``None`` means
    unrestricted — the serial platform), and the temporary guard set
    pushed by :meth:`region_guard`.  Checks are pure observation; no
    method here mutates anything a model component can see.
    """

    def __init__(self, clock: SupportsNow) -> None:
        self._clock = clock
        #: Runtime lease typestate; DurableQ reports protocol events
        #: here when its simulator runs sanitized.
        self.lease_guard = LeaseGuard()
        self.known_regions: FrozenSet[str] = frozenset()
        self._allowed: Optional[FrozenSet[str]] = None
        self._guard: Optional[FrozenSet[str]] = None
        #: stream name -> owning region (or None for replicated streams);
        #: rebuilt lazily after every :meth:`register_regions`.
        self._owner_cache: Dict[str, Optional[str]] = {}

    @property
    def now(self) -> float:
        return self._clock.now

    # -- ownership configuration ---------------------------------------
    def register_regions(self, names: Iterable[str]) -> None:
        """Teach the sanitizer the simulation's region names."""
        self.known_regions = self.known_regions | frozenset(names)
        self._owner_cache.clear()

    def restrict(self, regions: Iterable[str]) -> None:
        """Limit allowed regions (a parsim shard's owned set)."""
        self._allowed = frozenset(regions)

    def allowed_regions(self) -> Optional[FrozenSet[str]]:
        """The currently-enforced set; ``None`` means unrestricted."""
        return self._guard if self._guard is not None else self._allowed

    @contextmanager
    def region_guard(self, regions: Iterable[str]) -> Iterator[None]:
        """Temporarily scope checks to ``regions`` for a ``with`` block.

        Lets serial-platform tests assert a handler only touches the
        regions it claims to, without restricting the whole run.
        """
        previous = self._guard
        self._guard = frozenset(regions)
        try:
            yield
        finally:
            self._guard = previous

    # -- checks ---------------------------------------------------------
    def check_region(self, region: str, context: str) -> None:
        """Raise unless ``region`` is in the currently-allowed set."""
        allowed = self.allowed_regions()
        if allowed is None or region in allowed:
            return
        raise SanitizeError(
            f"cross-shard access: {context} touches region {region!r} "
            f"but this shard owns only {sorted(allowed)}")

    def owner_of_stream(self, name: str) -> Optional[str]:
        """The region owning a ``/``-qualified stream name, if any.

        ``config-jitter/region-03/sched`` is owned by ``region-03``;
        replicated streams (``arrivals``, ``client-region``,
        ``resources/<fn>``, ``periodic-jitter``) name no region and are
        never restricted.
        """
        if name in self._owner_cache:
            return self._owner_cache[name]
        owner = next((part for part in name.split("/")
                      if part in self.known_regions), None)
        self._owner_cache[name] = owner
        return owner

    # -- wrapper factories ----------------------------------------------
    def region_map(self, name: str) -> "RegionMapProxy":
        """A fresh empty checking proxy for a region-keyed map."""
        return RegionMapProxy(self, name)


class SanitizedRngStream(RngStream):
    """An :class:`RngStream` that checks every draw, forwarding exactly.

    Subclasses the real stream (same seed derivation, same underlying
    ``random.Random``), so the value sequence is bit-identical to an
    unsanitized stream — the check runs *before* each draw and never
    consumes entropy.
    """

    def __init__(self, name: str, seed: int, sanitizer: Sanitizer) -> None:
        super().__init__(name, seed)
        self._sanitizer = sanitizer
        self._last_draw_at = float("-inf")

    def _check(self) -> None:
        sanitizer = self._sanitizer
        owner = sanitizer.owner_of_stream(self.name)
        if owner is not None:
            sanitizer.check_region(owner, f"RNG stream {self.name!r}")
        now = sanitizer.now
        if now < self._last_draw_at:
            raise SanitizeError(
                f"out-of-order draw on RNG stream {self.name!r}: "
                f"drawing at sim time {now} after a draw at "
                f"{self._last_draw_at}")
        self._last_draw_at = now

    def uniform(self, lo: float, hi: float) -> float:
        self._check()
        return super().uniform(lo, hi)

    def random(self) -> float:
        self._check()
        return super().random()

    def randint(self, lo: int, hi: int) -> int:
        self._check()
        return super().randint(lo, hi)

    def expovariate(self, rate: float) -> float:
        self._check()
        return super().expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        self._check()
        return super().lognormal(mu, sigma)

    def pareto(self, alpha: float, x_min: float = 1.0) -> float:
        self._check()
        return super().pareto(alpha, x_min)

    def gauss(self, mu: float, sigma: float) -> float:
        self._check()
        return super().gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        self._check()
        return super().choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        self._check()
        return super().sample(seq, k)

    def shuffle(self, lst: List[Any]) -> None:
        self._check()
        super().shuffle(lst)

    def weighted_choice(self, items: Sequence[T],
                        weights: Sequence[float]) -> T:
        self._check()
        return super().weighted_choice(items, weights)

    def weighted_chooser(self, items: Sequence[T],
                         weights: Sequence[float]) -> Callable[[], T]:
        # The parent builds the table once and draws through a closure;
        # wrap the closure so memoized choosers stay checked per draw.
        choose = super().weighted_chooser(items, weights)

        def checked() -> T:
            self._check()
            return choose()

        return checked

    def poisson(self, lam: float) -> int:
        self._check()
        return super().poisson(lam)


class SanitizedRngRegistry(RngRegistry):
    """An :class:`RngRegistry` that mints checking streams.

    Seed derivation is identical to the parent's, so stream ``name``
    yields the same draw sequence sanitized or not.
    """

    def __init__(self, master_seed: int, sanitizer: Sanitizer) -> None:
        super().__init__(master_seed)
        self._sanitizer = sanitizer

    def stream(self, name: str) -> RngStream:
        existing = self._streams.get(name)
        if existing is None:
            existing = SanitizedRngStream(
                name, derive_seed(self.master_seed, name), self._sanitizer)
            self._streams[name] = existing
        return existing


class RegionMapProxy(Dict[str, Any]):
    """A region-keyed dict that checks key ownership and iteration order.

    Still a real ``dict`` (construction order, ``in``, ``len`` all
    behave identically), so wrapping a platform map changes nothing a
    component can observe — only illegal accesses now raise instead of
    silently succeeding (or raising a bare ``KeyError``).

    Membership tests (``key in map``) are deliberately unchecked: asking
    *whether* a shard hosts a region is how routing decisions are made;
    touching the entry is what crosses the boundary.
    """

    def __init__(self, sanitizer: Sanitizer, name: str) -> None:
        super().__init__()
        self._sanitizer = sanitizer
        self._name = name

    def _check_key(self, key: str, op: str) -> None:
        sanitizer = self._sanitizer
        if isinstance(key, str) and key in sanitizer.known_regions:
            sanitizer.check_region(key, f"{op} of {self._name}[{key!r}]")

    def _check_order(self) -> None:
        keys = list(dict.keys(self))
        if keys != sorted(keys):
            raise SanitizeError(
                f"iteration over region map {self._name!r} whose keys are "
                f"not in sorted order ({keys}): scheduling decisions would "
                f"depend on dict insertion order — iterate "
                f"sorted(map.items()) or insert in sorted order")

    def __getitem__(self, key: str) -> Any:
        self._check_key(key, "read")
        return super().__getitem__(key)

    def __setitem__(self, key: str, value: Any) -> None:
        self._check_key(key, "write")
        super().__setitem__(key, value)

    def __delitem__(self, key: str) -> None:
        self._check_key(key, "delete")
        super().__delitem__(key)

    def __iter__(self) -> Iterator[str]:
        self._check_order()
        return super().__iter__()

    def keys(self) -> KeysView[str]:
        self._check_order()
        return super().keys()

    def values(self) -> ValuesView[Any]:
        self._check_order()
        return super().values()

    def items(self) -> ItemsView[str, Any]:
        self._check_order()
        return super().items()


def region_map(sanitizer: Optional[Sanitizer],
               name: str) -> Dict[str, Any]:
    """Platform helper: a checking proxy when sanitizing, else a dict.

    Platforms create their region-keyed maps through this so the
    sanitized and unsanitized wiring stay one code path::

        self.schedulers = region_map(sim.sanitizer, "schedulers")
    """
    if sanitizer is None:
        return {}
    return sanitizer.region_map(name)
