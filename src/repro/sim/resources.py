"""Shared-resource primitives: counting resources and item stores.

These model contention points in the platform — worker execution slots,
memory pools, bounded queues — with deterministic FIFO wakeup order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .events import Signal
from .kernel import Simulator


class Resource:
    """A counting resource with FIFO waiters.

    ``acquire(n)`` returns a :class:`Signal` that fires when ``n`` units
    have been granted.  ``release(n)`` returns units and wakes waiters in
    arrival order (no starvation, deterministic).
    """

    def __init__(self, sim: Simulator, capacity: float, name: str = "") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0.0
        self._waiters: Deque[tuple] = deque()

    @property
    def available(self) -> float:
        return self.capacity - self.in_use

    def acquire(self, amount: float = 1.0) -> Signal:
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"cannot acquire {amount} from resource of capacity "
                f"{self.capacity}")
        sig = Signal()
        if not self._waiters and self.in_use + amount <= self.capacity:
            self.in_use += amount
            sig.fire(amount)
        else:
            self._waiters.append((amount, sig))
        return sig

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Non-blocking acquire; returns whether the units were granted."""
        if not self._waiters and self.in_use + amount <= self.capacity:
            self.in_use += amount
            return True
        return False

    def release(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self.in_use -= amount
        if self.in_use < -1e-9:
            raise RuntimeError(
                f"resource {self.name!r} over-released (in_use={self.in_use})")
        self.in_use = max(self.in_use, 0.0)
        self._wake()

    def resize(self, new_capacity: float) -> None:
        """Change capacity (elastic pools); wakes waiters if it grew."""
        if new_capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {new_capacity}")
        self.capacity = new_capacity
        self._wake()

    def _wake(self) -> None:
        while self._waiters:
            amount, sig = self._waiters[0]
            if self.in_use + amount > self.capacity:
                break
            self._waiters.popleft()
            self.in_use += amount
            sig.fire(amount)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """An unbounded-or-bounded FIFO store of items with blocking get/put."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Signal:
        """Add ``item``; blocks (signal pending) when at capacity."""
        sig = Signal()
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((item, sig))
        else:
            self._deliver(item)
            sig.fire(None)
        return sig

    def try_put(self, item: Any) -> bool:
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._deliver(item)
        return True

    def get(self) -> Signal:
        """Take the oldest item; the returned signal fires with the item."""
        sig = Signal()
        if self._items:
            sig.fire(self._items.popleft())
            self._admit_putters()
        else:
            self._getters.append(sig)
        return sig

    def try_get(self) -> Optional[Any]:
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putters()
        return item

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None

    def _deliver(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def _admit_putters(self) -> None:
        while self._putters and (
                self.capacity is None or len(self._items) < self.capacity):
            item, sig = self._putters.popleft()
            self._deliver(item)
            sig.fire(None)
