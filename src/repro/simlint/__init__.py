"""simlint: determinism & sim-safety static analysis for this repo.

The simulator's entire value rests on bit-identical reproducibility —
paired A/B ablations, replayable trace digests, sweep results that do
not depend on which worker process ran them.  That contract is easy to
break with ordinary Python: a module-level ``itertools.count`` survives
across back-to-back runs in one process (the PR 2 call-id bug), a
``time.time()`` smuggles wall-clock into a simulated world, iterating a
``set`` makes scheduling order depend on hash seeds.

``simlint`` encodes the contract as a small stdlib-``ast`` rule engine
(:mod:`repro.simlint.engine`) plus a curated ruleset
(:mod:`repro.simlint.rules`, SL001–SL015 — including the
interprocedural shard-safety rules backed by :mod:`repro.simlint.flow`
and the lifecycle typestate rules backed by
:mod:`repro.simlint.typestate`).  Run it as::

    python -m repro lint                # lint src/repro, text output
    python -m repro lint --json         # machine-readable findings
    python -m repro lint path/ file.py  # lint specific trees/files
    python -m repro lint --baseline simlint_baseline.json

Suppress a deliberate violation on its line with a justification::

    t0 = time.perf_counter()  # simlint: disable=SL002 -- wall-clock bench

or for a whole file with ``# simlint: disable-file=SL003``.
"""

from .baseline import Baseline, apply_baseline
from .engine import Finding, LintContext, Rule, Severity, lint_paths, lint_source
from .rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintContext",
    "Rule",
    "Severity",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "rules_by_id",
]
