"""Typestate (protocol FSM) analysis for the lifecycle rules SL013–SL015.

Where :mod:`repro.simlint.flow` answers "whose state is this value?",
this module answers "what state is this value *in*?".  A
:class:`Protocol` declares a lifecycle as data — states, transitions,
error states — and the engine tracks the abstract state of every
tracked value through assignments, aliases, branches (joining state
sets at merge points), loops, and across calls via per-function
summaries built on :mod:`repro.simlint.callgraph`:

* **lease** (SL014) — ``DurableQ.poll`` leases calls; each must settle
  exactly once (``polled → acked | nacked``), and ``extend_lease`` is
  legal only while ``polled``.
* **handle** (SL013) — ``sim.call_after/call_at/every/inject`` return
  one-shot handles (``armed → cancelled``); no second ``cancel``, no
  re-arm, no silently dropped armed binding.
* **snapshot** (SL015) — ``MetricsRegistry.snapshot()`` captures; a
  snapshot pairs with at most one ``merge``/``from_snapshot``, the
  source registry must not be mutated while a capture awaits its merge,
  and a registry never merges into itself.

**Abstract domain.**  Each tracked value is a *state set* (may-states:
``{"acked", "polled"}`` after an ``if`` that settles one branch only).
Joins are set unions; an event checks every member against the
protocol's error table and steps the survivors through the transition
table.  Loop bodies are executed twice over the joined entry state, so
a settle *inside* a loop over something else is seen as a repeat event.

**Conservatism.**  The analysis is local-names-only and treats every
unknown sink as an escape: storing a tracked value on an attribute or
into a container, returning it, capturing it in a closure, or passing
it to a call whose summary applies no protocol event all move the value
to ``escaped`` — no further obligations, no findings.  Imprecision can
therefore suppress findings, never invent them.

**Summaries.**  Each function's summary records, per parameter, the
union of that parameter's final state sets over all normal exits (a
raise path carries no obligations), plus the protocol state of a fresh
value it returns.  Call sites replay the summary: a callee that ACKs
its argument makes ``self._finalize(call)`` a settle event at the call
site, and a double settle through helpers is reported where the second
call happens.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .callgraph import FunctionInfo, ProjectIndex, project_index
from .engine import LintContext, Project

# -- shared abstract states ---------------------------------------------
#: A parameter's unknown incoming state: events are legal and recorded.
OPAQUE = "?"
#: Out of this function's view — ownership moved; no more obligations.
ESCAPED = "escaped"
#: Engine states for acquisition collections (a ``poll()`` result list).
FRESH_COLL = "fresh-collection"
DRAINED_COLL = "drained"

_MAX_PASSES = 10


@dataclass(frozen=True)
class Protocol:
    """One lifecycle FSM, declared as data.

    ``transitions`` maps ``(state, event) -> next state``;
    ``errors`` maps ``(state, event) -> message`` for the protocol's
    error states.  A pair in neither table is a no-op (unknown method,
    unknown state) — conservatism again.  Events arrive two ways:
    ``arg_events`` name methods whose *first argument* is the tracked
    value (``q.ack(call)``), ``recv_events`` name methods whose
    *receiver* is (``handle.cancel()``); ``proxy_attrs`` let an
    attribute stand in for its base object (``q.extend_lease(
    call.call_id)`` is an event on ``call``).
    """

    name: str
    rule_id: str
    states: Tuple[str, ...]
    initial: str
    #: Method names that mint a fresh tracked value.
    acquire: FrozenSet[str]
    #: Acquisition returns a list of fresh values (``poll``) rather
    #: than a single one; iteration/indexing mints the elements.
    acquire_collection: bool
    arg_events: Dict[str, str]
    recv_events: Dict[str, str]
    proxy_attrs: FrozenSet[str]
    transitions: Dict[Tuple[str, str], str]
    errors: Dict[Tuple[str, str], str]
    #: States that must not reach a normal function exit for values
    #: acquired in that function (a lost lease, a dropped armed handle).
    leak_states: FrozenSet[str]
    leak_message: str
    #: Report a bare, unbound acquisition (``shard.poll(...)`` as a
    #: statement) as an immediate leak — the fresh obligations are
    #: unreachable.  Off for handles: unbound scheduling is the normal
    #: fire-and-forget idiom.
    leak_on_drop: bool = False
    #: Message for rebinding a variable whose current value is still in
    #: ``initial`` state (double-arm); None disables the check.
    rebind_message: Optional[str] = None
    #: Attribute whose non-literal store on a tracked value re-arms it
    #: (``h.cancelled = flag``); the literal-``False`` form is SL006's
    #: finding and is deliberately excluded here.
    rearm_attr: Optional[str] = None
    rearm_message: str = ""


LEASE = Protocol(
    name="lease",
    rule_id="SL014",
    states=("polled", "acked", "nacked"),
    initial="polled",
    acquire=frozenset({"poll"}),
    acquire_collection=True,
    arg_events={"ack": "ack", "ack_by_id": "ack",
                "nack": "nack", "nack_by_id": "nack",
                "extend_lease": "extend"},
    recv_events={},
    proxy_attrs=frozenset({"call_id"}),
    transitions={
        ("polled", "ack"): "acked",
        ("polled", "nack"): "nacked",
        ("polled", "extend"): "polled",
        (OPAQUE, "ack"): "acked",
        (OPAQUE, "nack"): "nacked",
        (OPAQUE, "extend"): OPAQUE,
    },
    errors={
        ("acked", "ack"): ("ACK of a call that is already ACKed — each "
                           "leased call settles exactly once"),
        ("nacked", "ack"): ("ACK of a call that was already NACKed — "
                            "ack and nack on the same lease"),
        ("acked", "nack"): ("NACK of a call that was already ACKed — "
                            "ack and nack on the same lease"),
        ("nacked", "nack"): ("NACK of a call that was already NACKed — "
                             "double NACK"),
        ("acked", "extend"): ("extend_lease() on a call that was "
                              "already ACKed — extending a settled "
                              "lease"),
        ("nacked", "extend"): ("extend_lease() on a call that was "
                               "already NACKed — extending a settled "
                               "lease"),
    },
    leak_states=frozenset({"polled"}),
    leak_message=("a call leased by poll() can reach the end of this "
                  "function unsettled (no ack/nack and no owner on some "
                  "path) — the lease is lost until the sweep expires "
                  "it"),
    leak_on_drop=True,
)

HANDLE = Protocol(
    name="handle",
    rule_id="SL013",
    states=("armed", "cancelled"),
    initial="armed",
    acquire=frozenset({"call_after", "call_at", "every", "inject"}),
    acquire_collection=False,
    arg_events={},
    recv_events={"cancel": "cancel"},
    proxy_attrs=frozenset(),
    transitions={
        ("armed", "cancel"): "cancelled",
        (OPAQUE, "cancel"): "cancelled",
    },
    errors={
        ("cancelled", "cancel"): ("cancel() of an already-cancelled "
                                  "handle — handles are one-shot"),
    },
    leak_states=frozenset({"armed"}),
    leak_message=("armed handle bound here never escapes and is never "
                  "cancelled — store it where it can be cancelled, or "
                  "drop the binding (fire-and-forget)"),
    rebind_message=("rebinding a variable that still holds an armed "
                    "handle (double-arm) — the old event keeps firing "
                    "with no handle left to cancel it"),
    rearm_attr="cancelled",
    rearm_message=("store to .cancelled re-arms a one-shot handle and "
                   "corrupts event-queue accounting — schedule a fresh "
                   "event instead"),
)

SNAPSHOT = Protocol(
    name="snapshot",
    rule_id="SL015",
    states=("fresh", "consumed"),
    initial="fresh",
    acquire=frozenset({"snapshot"}),
    acquire_collection=False,
    arg_events={"merge": "consume", "from_snapshot": "consume"},
    recv_events={},
    proxy_attrs=frozenset(),
    transitions={
        ("fresh", "consume"): "consumed",
        (OPAQUE, "consume"): "consumed",
    },
    errors={
        ("consumed", "consume"): ("snapshot merged/rehydrated a second "
                                  "time — folding the same snapshot in "
                                  "again double-counts every metric"),
    },
    leak_states=frozenset(),
    leak_message="",
)

PROTOCOLS: Tuple[Protocol, ...] = (LEASE, HANDLE, SNAPSHOT)

#: method name -> (protocol, event) for first-argument events.
_ARG_EVENTS: Dict[str, Tuple[Protocol, str]] = {
    m: (proto, ev) for proto in PROTOCOLS
    for m, ev in proto.arg_events.items()}
#: method name -> (protocol, event) for receiver events.
_RECV_EVENTS: Dict[str, Tuple[Protocol, str]] = {
    m: (proto, ev) for proto in PROTOCOLS
    for m, ev in proto.recv_events.items()}
#: acquisition method name -> protocol.
_ACQUIRE: Dict[str, Protocol] = {
    m: proto for proto in PROTOCOLS for m in proto.acquire}
#: nominal result state of an event (its OPAQUE-source transition).
_NOMINAL: Dict[Tuple[str, str], str] = {
    (proto.name, ev): proto.transitions[(OPAQUE, ev)]
    for proto in PROTOCOLS
    for ev in set(proto.arg_events.values()) | set(
        proto.recv_events.values())}
#: protocol state -> event that produces it (for summary replay).
_STATE_EVENT: Dict[Tuple[str, str], str] = {
    (proto.name, tgt): ev for proto in PROTOCOLS
    for (src, ev), tgt in proto.transitions.items()
    if src == OPAQUE and tgt != OPAQUE}

#: SL015's mutation guard: a chained ``registry.counter(...).inc(...)``
#: while one of the registry's snapshots awaits its merge.
_REGISTRY_ACCESSORS = frozenset(
    {"counter", "gauge", "distribution", "sketch", "bind_counter",
     "bind_gauge", "bind_distribution", "bind_sketch"})
_METRIC_MUTATORS = frozenset(
    {"inc", "dec", "add", "set", "record", "observe", "merge"})
_MUTATE_MESSAGE = ("registry mutated between snapshot() and the "
                   "snapshot's merge — the captured snapshot is stale "
                   "and the mutation is lost to whoever merges it")
_SELF_MERGE_MESSAGE = ("registry merged into itself — every metric "
                       "double-counts")


@dataclass
class _Obj:
    """One tracked value (or acquisition collection) of a walk."""

    oid: int
    protocol: Optional[Protocol]
    node: ast.AST                    #: acquisition / parameter node
    desc: str
    param_index: Optional[int] = None
    is_collection: bool = False
    provenance: Optional[str] = None  #: snapshot: source registry id


@dataclass
class TSummary:
    """What a function does, protocol-wise, to its parameters.

    ``params`` maps a positional index to ``(protocol name, union of
    final state sets over all normal exits)`` — ``OPAQUE`` in the set
    means "untouched on some path".  ``returns`` carries the state of a
    fresh tracked value the function returns, if any.
    """

    params: Dict[int, Tuple[str, FrozenSet[str]]] = field(
        default_factory=dict)
    returns: Optional[Tuple[str, FrozenSet[str]]] = None


class _Path:
    """Abstract state along one control-flow path."""

    __slots__ = ("env", "states", "live")

    def __init__(self, env: Optional[Dict[str, int]] = None,
                 states: Optional[Dict[int, FrozenSet[str]]] = None,
                 live: bool = True) -> None:
        self.env: Dict[str, int] = dict(env) if env else {}
        self.states: Dict[int, FrozenSet[str]] = (
            dict(states) if states else {})
        self.live = live

    def copy(self) -> "_Path":
        return _Path(self.env, self.states, self.live)


def _join(a: _Path, b: _Path) -> _Path:
    """May-join: agreeing bindings survive, state sets union."""
    if not a.live:
        return b.copy() if b.live else _Path(live=False)
    if not b.live:
        return a.copy()
    env = {name: oid for name, oid in a.env.items()
           if b.env.get(name) == oid}
    states: Dict[int, FrozenSet[str]] = dict(a.states)
    for oid, st in b.states.items():
        states[oid] = states.get(oid, frozenset()) | st
    return _Path(env, states)


def _join_all(paths: Sequence[_Path]) -> _Path:
    out = _Path(live=False)
    for p in paths:
        out = _join(out, p)
    return out


def _dotted(expr: ast.expr) -> Optional[str]:
    """Stable identity string for simple receivers (``self.metrics``)."""
    parts: List[str] = []
    cur = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _call_method(node: ast.Call) -> Optional[str]:
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return None


class _FnWalk:
    """Abstract interpretation of one function body."""

    def __init__(self, analysis: "TypestateAnalysis",
                 info: FunctionInfo) -> None:
        self.analysis = analysis
        self.info = info
        self.ctx = info.ctx
        self.objs: Dict[int, _Obj] = {}
        self._next_oid = 0
        self.violations: List[Tuple[str, ast.AST, str]] = []
        self.exit_paths: List[_Path] = []
        #: fresh values returned, for the summary (protocol, states).
        self.returned: Optional[Tuple[str, FrozenSet[str]]] = None
        self._param_oids: Dict[int, int] = {}
        self._break_stack: List[List[_Path]] = []

    # -- plumbing --------------------------------------------------------
    def _mint(self, protocol: Optional[Protocol], node: ast.AST,
              desc: str, path: _Path, states: FrozenSet[str],
              is_collection: bool = False,
              param_index: Optional[int] = None,
              provenance: Optional[str] = None) -> int:
        oid = self._next_oid
        self._next_oid += 1
        self.objs[oid] = _Obj(oid, protocol, node, desc,
                              param_index=param_index,
                              is_collection=is_collection,
                              provenance=provenance)
        path.states[oid] = states
        return oid

    def _violate(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.violations.append((rule_id, node, message))

    def _escape(self, oid: int, path: _Path) -> None:
        path.states[oid] = frozenset({ESCAPED})

    # -- entry -----------------------------------------------------------
    def run(self) -> None:
        entry = _Path()
        for i, p in enumerate(self.info.params):
            oid = self._mint(None, self.info.node, f"parameter {p!r}",
                             entry, frozenset({OPAQUE}), param_index=i)
            self._param_oids[i] = oid
            entry.env[p] = oid
        out = self._stmts(self.info.node.body, entry)
        if out.live:
            self.exit_paths.append(out)
        self._check_leaks()

    def _check_leaks(self) -> None:
        if not self.exit_paths:
            return
        final = _join_all(self.exit_paths)
        for oid, states in sorted(final.states.items()):
            obj = self.objs[oid]
            if obj.param_index is not None or obj.protocol is None:
                continue
            proto = obj.protocol
            if obj.is_collection:
                if FRESH_COLL in states and proto.leak_on_drop:
                    self._violate(
                        proto.rule_id, obj.node,
                        f"{obj.desc} result dropped without settling "
                        "its leased calls")
                continue
            if proto.leak_states & states:
                self._violate(proto.rule_id, obj.node, proto.leak_message)

    def summary(self) -> TSummary:
        out = TSummary()
        if self.exit_paths:
            final = _join_all(self.exit_paths)
            for i, oid in sorted(self._param_oids.items()):
                obj = self.objs[oid]
                if obj.protocol is None:
                    continue
                states = final.states.get(oid, frozenset({OPAQUE}))
                if states - {OPAQUE}:
                    out.params[i] = (obj.protocol.name, states)
        out.returns = self.returned
        return out

    # -- statements ------------------------------------------------------
    def _stmts(self, body: Sequence[ast.stmt], path: _Path) -> _Path:
        for stmt in body:
            if not path.live:
                return path
            path = self._stmt(stmt, path)
        return path

    def _stmt(self, stmt: ast.stmt, path: _Path) -> _Path:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # The nested def is analyzed independently (own opaque
            # params); here it only captures — anything tracked that it
            # closes over escapes our view (it may run at any time).
            self._escape_free_names(stmt, path)
            return path
        if isinstance(stmt, ast.ClassDef):
            return path
        if isinstance(stmt, ast.Assign):
            return self._assign(stmt.targets, stmt.value, stmt, path)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                return self._assign([stmt.target], stmt.value, stmt, path)
            return path
        if isinstance(stmt, ast.AugAssign):
            self._expr_effects(stmt.value, path)
            return path
        if isinstance(stmt, ast.Return):
            return self._return(stmt, path)
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr_effects(stmt.exc, path)
            path.live = False
            return path
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, path)
        if isinstance(stmt, ast.While):
            self._expr_effects(stmt.test, path)
            return self._loop(stmt.body, stmt.orelse, path)
        if isinstance(stmt, ast.If):
            self._expr_effects(stmt.test, path)
            then = self._stmts(stmt.body, path.copy())
            other = self._stmts(stmt.orelse, path.copy())
            return _join(then, other)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr_effects(item.context_expr, path)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, path)
            return self._stmts(stmt.body, path)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, path)
        if isinstance(stmt, ast.Break):
            if self._break_stack:
                self._break_stack[-1].append(path.copy())
            path.live = False
            return path
        if isinstance(stmt, ast.Continue):
            if self._break_stack:
                self._break_stack[-1].append(path.copy())
            path.live = False
            return path
        if isinstance(stmt, ast.Expr):
            self._expr_effects(stmt.value, path, statement=True)
            return path
        if isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    path.env.pop(tgt.id, None)
            return path
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr_effects(child, path)
        return path

    def _return(self, stmt: ast.Return, path: _Path) -> _Path:
        if stmt.value is not None:
            oid: Optional[int] = None
            if isinstance(stmt.value, ast.Name):
                oid = path.env.get(stmt.value.id)
            else:
                self._expr_effects(stmt.value, path)
                oid = self._value_of(stmt.value, path)
            if oid is not None:
                obj = self.objs[oid]
                if (obj.protocol is not None and obj.param_index is None
                        and self.returned is None
                        and not obj.is_collection):
                    states = path.states.get(
                        oid, frozenset()) - {ESCAPED}
                    if states:
                        self.returned = (obj.protocol.name, states)
                self._escape(oid, path)
        self.exit_paths.append(path.copy())
        path.live = False
        return path

    def _try(self, stmt: ast.Try, path: _Path) -> _Path:
        entry = path.copy()
        after_body = self._stmts(stmt.body, path)
        if after_body.live:
            after_body = self._stmts(stmt.orelse, after_body)
        # An exception can surface anywhere in the body; the handler's
        # entry state is approximated by the try's entry state.
        branches = [after_body]
        for handler in stmt.handlers:
            h = entry.copy()
            if handler.name and isinstance(handler.name, str):
                h.env.pop(handler.name, None)
            branches.append(self._stmts(handler.body, h))
        merged = _join_all(branches)
        return self._stmts(stmt.finalbody, merged)

    def _loop(self, body: Sequence[ast.stmt],
              orelse: Sequence[ast.stmt], path: _Path,
              bind: Optional[Tuple[ast.expr, ast.expr]] = None) -> _Path:
        """Two monotone passes over a loop body with head joins."""
        self._break_stack.append([])
        try:
            head = path
            for _ in range(2):
                p = head.copy()
                if bind is not None:
                    self._bind_iteration(bind[0], bind[1], p)
                p = self._stmts(body, p)
                head = _join(head, p)
            exits = [head] + self._break_stack[-1]
        finally:
            self._break_stack.pop()
        out = _join_all(exits)
        return self._stmts(orelse, out)

    def _for(self, stmt: "ast.For | ast.AsyncFor", path: _Path) -> _Path:
        self._expr_effects(stmt.iter, path)
        return self._loop(stmt.body, stmt.orelse, path,
                          bind=(stmt.target, stmt.iter))

    def _bind_iteration(self, target: ast.expr, it: ast.expr,
                        path: _Path) -> None:
        """Iterating an acquisition collection mints fresh elements."""
        src: Optional[int] = None
        if isinstance(it, ast.Name):
            src = path.env.get(it.id)
        else:
            src = self._value_of(it, path)
        if src is not None:
            obj = self.objs[src]
            if obj.is_collection and obj.protocol is not None:
                states = path.states.get(src, frozenset())
                if ESCAPED not in states:
                    path.states[src] = frozenset({DRAINED_COLL})
                if isinstance(target, ast.Name):
                    proto = obj.protocol
                    oid = self._mint(proto, obj.node,
                                     f"{proto.name} from {obj.desc}",
                                     path, frozenset({proto.initial}))
                    path.env[target.id] = oid
                    return
        self._bind(target, None, path)

    # -- assignment ------------------------------------------------------
    def _assign(self, targets: Sequence[ast.expr], value: ast.expr,
                stmt: ast.stmt, path: _Path) -> _Path:
        oid: Optional[int] = None
        if isinstance(value, ast.Name):
            oid = path.env.get(value.id)        # alias, no effects
        elif isinstance(value, ast.Lambda):
            self._escape_free_names(value, path)
        else:
            self._expr_effects(value, path)
            oid = self._value_of(value, path)
        for target in targets:
            self._bind(target, oid, path, value=value)
        return path

    def _bind(self, target: ast.expr, oid: Optional[int], path: _Path,
              value: Optional[ast.expr] = None) -> None:
        if isinstance(target, ast.Name):
            old = path.env.get(target.id)
            if (old is not None and oid != old):
                old_obj = self.objs[old]
                proto = old_obj.protocol
                if (proto is not None and proto.rebind_message
                        and old_obj.param_index is None
                        and proto.initial in path.states.get(
                            old, frozenset())):
                    self._violate(proto.rule_id, target,
                                  proto.rebind_message)
            if oid is not None:
                path.env[target.id] = oid
            else:
                path.env.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if (isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == len(target.elts)):
                for t, v in zip(target.elts, value.elts):
                    sub = (path.env.get(v.id)
                           if isinstance(v, ast.Name) else None)
                    self._bind(t, sub, path, value=v)
            else:
                for t in target.elts:
                    self._bind(t, None, path)
            return
        # Attribute / subscript target: the stored value has an owner
        # now — escape it.  A store *onto* a tracked object is a no-op
        # (``call.state = BUFFERED``) except the re-arm attribute.
        if oid is not None:
            self._escape(oid, path)
        if isinstance(target, ast.Attribute):
            base = (path.env.get(target.value.id)
                    if isinstance(target.value, ast.Name) else None)
            if base is not None:
                obj = self.objs[base]
                proto = obj.protocol
                if (proto is not None and proto.rearm_attr == target.attr
                        and not (isinstance(value, ast.Constant)
                                 and value.value is False)):
                    self._violate(proto.rule_id, target,
                                  proto.rearm_message)
        elif isinstance(target, ast.Subscript):
            self._expr_effects(target.slice, path)

    # -- expressions -----------------------------------------------------
    def _escape_free_names(self, fnode: ast.AST, path: _Path) -> None:
        from .flow import _free_names
        for name in sorted(_free_names(fnode)):
            oid = path.env.get(name)
            if oid is not None:
                self._escape(oid, path)

    def _value_of(self, expr: ast.expr, path: _Path) -> Optional[int]:
        """The tracked oid ``expr`` evaluates to (minting fresh ones)."""
        if isinstance(expr, ast.Name):
            return path.env.get(expr.id)
        if isinstance(expr, ast.Await):
            return self._value_of(expr.value, path)
        if isinstance(expr, ast.Subscript):
            base = self._value_of(expr.value, path)
            if base is not None:
                obj = self.objs[base]
                if obj.is_collection and obj.protocol is not None:
                    states = path.states.get(base, frozenset())
                    if ESCAPED not in states:
                        path.states[base] = frozenset({DRAINED_COLL})
                    proto = obj.protocol
                    return self._mint(proto, obj.node,
                                      f"{proto.name} from {obj.desc}",
                                      path, frozenset({proto.initial}))
            return None
        if isinstance(expr, ast.Call):
            method = _call_method(expr)
            proto = _ACQUIRE.get(method) if method is not None else None
            if proto is not None and isinstance(expr.func, ast.Attribute):
                provenance = None
                if proto is SNAPSHOT:
                    provenance = _dotted(expr.func.value)
                return self._mint(
                    proto, expr, f"{method}()", path,
                    frozenset({FRESH_COLL if proto.acquire_collection
                               else proto.initial}),
                    is_collection=proto.acquire_collection,
                    provenance=provenance)
            callee = self.analysis.index.resolve_call(self.info, expr)
            if callee is not None:
                summary = self.analysis.summaries.get(callee.qualname)
                if summary is not None and summary.returns is not None:
                    pname, states = summary.returns
                    rproto = next(p for p in PROTOCOLS if p.name == pname)
                    return self._mint(rproto, expr,
                                      f"{callee.name}()", path, states)
        return None

    def _expr_effects(self, expr: Optional[ast.expr], path: _Path,
                      statement: bool = False) -> None:
        """Process events and escapes inside an arbitrary expression."""
        if expr is None:
            return
        consumed: Set[int] = set()
        # Calls under a lambda run later (if ever), so they must not
        # step the FSM here; the lambda's free names escape instead.
        deferred: Set[int] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                deferred.update(id(n) for n in ast.walk(node.body))
        calls = [n for n in ast.walk(expr)
                 if isinstance(n, ast.Call) and id(n) not in deferred]
        for call in calls:
            self._call_effects(call, path, consumed)
        if statement and isinstance(expr, ast.Call):
            method = _call_method(expr)
            proto = _ACQUIRE.get(method) if method is not None else None
            if (proto is not None and proto.leak_on_drop
                    and isinstance(expr.func, ast.Attribute)):
                self._violate(
                    proto.rule_id, expr,
                    f"{method}() result discarded — its leased calls "
                    "can never be settled from here")
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                self._escape_free_names(node, path)
                continue
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)):
                continue
            if id(node) in consumed:
                continue
            oid = path.env.get(node.id)
            if oid is None:
                continue
            parent = self.ctx.parent(node)
            # Field reads (call.function_name) and receiver positions
            # (call.method(...)) do not transfer ownership.
            if isinstance(parent, ast.Attribute):
                continue
            if isinstance(parent, ast.Call) and parent.func is node:
                continue
            if isinstance(parent, ast.Compare):
                continue
            self._escape(oid, path)

    def _event_target(self, arg: ast.expr, proto: Protocol,
                      path: _Path, consumed: Set[int]) -> Optional[int]:
        """Resolve an event argument (or its proxy attr) to an oid."""
        if isinstance(arg, ast.Name):
            oid = path.env.get(arg.id)
            if oid is not None:
                consumed.add(id(arg))
            return oid
        if (isinstance(arg, ast.Attribute)
                and arg.attr in proto.proxy_attrs
                and isinstance(arg.value, ast.Name)):
            oid = path.env.get(arg.value.id)
            if oid is not None:
                consumed.add(id(arg.value))
            return oid
        return None

    def _call_effects(self, node: ast.Call, path: _Path,
                      consumed: Set[int]) -> None:
        method = _call_method(node)
        if method is None:
            return
        fn = node.func
        recv = fn.value if isinstance(fn, ast.Attribute) else None

        # SL015 special cases, independent of value tracking.
        if method == "merge" and recv is not None and node.args:
            rid, aid = _dotted(recv), _dotted(node.args[0])
            if rid is not None and rid == aid:
                self._violate(SNAPSHOT.rule_id, node, _SELF_MERGE_MESSAGE)
        if (method in _METRIC_MUTATORS and isinstance(recv, ast.Call)
                and isinstance(recv.func, ast.Attribute)
                and recv.func.attr in _REGISTRY_ACCESSORS):
            self._check_snapshot_mutation(node, recv.func.value, path)

        # First-argument events (q.ack(call), reg.merge(snap), ...).
        hit = _ARG_EVENTS.get(method)
        if hit is not None and node.args:
            proto, event = hit
            oid = self._event_target(node.args[0], proto, path, consumed)
            if oid is not None and not self.objs[oid].is_collection:
                self._apply_event(oid, proto, event, node, path)
                return
        # Receiver events (handle.cancel()).
        hit = _RECV_EVENTS.get(method)
        if hit is not None and isinstance(recv, ast.Name):
            proto, event = hit
            oid = path.env.get(recv.id)
            if oid is not None:
                self._apply_event(oid, proto, event, node, path)
                return
        # Summary replay for resolved calls.
        callee = self.analysis.index.resolve_call(self.info, node)
        if callee is None:
            return
        summary = self.analysis.summaries.get(callee.qualname)
        if summary is None or not summary.params:
            return
        offset = 1 if callee.class_name is not None else 0
        for pos, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            self._replay_param(callee, summary, pos + offset, arg,
                               node, path, consumed)
        for kw in node.keywords:
            if kw.arg is None:
                continue
            idx = callee.param_index(kw.arg)
            if idx is not None:
                self._replay_param(callee, summary, idx, kw.value,
                                   node, path, consumed)

    def _replay_param(self, callee: FunctionInfo, summary: TSummary,
                      index: int, arg: ast.expr, node: ast.Call,
                      path: _Path, consumed: Set[int]) -> None:
        info = summary.params.get(index)
        if info is None:
            return
        pname, final = info
        proto = next(p for p in PROTOCOLS if p.name == pname)
        oid = self._event_target(arg, proto, path, consumed)
        if oid is None or self.objs[oid].is_collection:
            return
        obj = self.objs[oid]
        if obj.protocol is None:
            obj.protocol = proto
        current = path.states.get(oid, frozenset())
        out: Set[str] = set()
        for f in sorted(final):
            if f == OPAQUE:
                out |= current          # untouched on that callee path
                continue
            if f == ESCAPED:
                out.add(ESCAPED)
                continue
            event = _STATE_EVENT.get((pname, f))
            if event is None:
                out.add(f)
                continue
            for s in sorted(current):
                if s == ESCAPED:
                    out.add(ESCAPED)
                    continue
                err = proto.errors.get((s, event))
                if err is not None:
                    self._violate(proto.rule_id, node,
                                  f"{err} (via {callee.name}())")
                    out.add(s)
                    continue
                out.add(proto.transitions.get((s, event), s)
                        if (s, event) in proto.transitions else f)
        if out:
            path.states[oid] = frozenset(out)

    def _apply_event(self, oid: int, proto: Protocol, event: str,
                     node: ast.AST, path: _Path) -> None:
        obj = self.objs[oid]
        if obj.protocol is None:
            obj.protocol = proto
        elif obj.protocol is not proto:
            return
        current = path.states.get(oid, frozenset({OPAQUE}))
        out: Set[str] = set()
        for s in sorted(current):
            if s == ESCAPED:
                out.add(ESCAPED)
                continue
            err = proto.errors.get((s, event))
            if err is not None:
                self._violate(proto.rule_id, node, err)
                out.add(s)      # stay: a third event reports again
                continue
            tgt = proto.transitions.get((s, event))
            out.add(tgt if tgt is not None else s)
        path.states[oid] = frozenset(out)
        if proto is SNAPSHOT and event == "consume":
            self.analysis.note_consumed(self.info.qualname, oid)

    def _check_snapshot_mutation(self, node: ast.Call,
                                 registry: ast.expr,
                                 path: _Path) -> None:
        rid = _dotted(registry)
        if rid is None:
            return
        for oid, states in sorted(path.states.items()):
            obj = self.objs[oid]
            if (obj.protocol is SNAPSHOT and obj.provenance == rid
                    and "fresh" in states):
                self._violate(SNAPSHOT.rule_id, node, _MUTATE_MESSAGE)
                return


class TypestateAnalysis:
    """Whole-project typestate analysis; built once per lint run."""

    def __init__(self, project: Project) -> None:
        self.index: ProjectIndex = project_index(project)
        self.summaries: Dict[str, TSummary] = {
            q: TSummary() for q in self.index.functions}
        self._consumed: Set[Tuple[str, int]] = set()
        walks: Dict[str, _FnWalk] = {}
        for _ in range(_MAX_PASSES):
            walks = {}
            self._consumed = set()
            for info in self.index.all_functions():
                walk = _FnWalk(self, info)
                walk.run()
                walks[info.qualname] = walk
            new = {q: walks[q].summary() for q in walks}
            for q in self.summaries:
                new.setdefault(q, TSummary())
            if new == self.summaries:
                break
            self.summaries = new
        self.walks = walks

    def note_consumed(self, qualname: str, oid: int) -> None:
        self._consumed.add((qualname, oid))

    def findings(self) -> Iterator[Tuple[str, LintContext, ast.AST, str]]:
        """``(rule_id, ctx, node, message)``, deduplicated."""
        seen: Set[Tuple[str, str, int, int, str]] = set()
        for qual in sorted(self.walks):
            walk = self.walks[qual]
            for rule_id, node, message in walk.violations:
                key = (rule_id, walk.ctx.path,
                       getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)
                if key not in seen:
                    seen.add(key)
                    yield rule_id, walk.ctx, node, message


def typestate_analysis(project: Project) -> TypestateAnalysis:
    """The (cached) :class:`TypestateAnalysis` of ``project``."""
    analysis = project.cache.get("typestate.analysis")
    if analysis is None:
        analysis = TypestateAnalysis(project)
        project.cache["typestate.analysis"] = analysis
    return analysis  # type: ignore[return-value]
