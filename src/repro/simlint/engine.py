"""The simlint rule engine: parse once, walk many, suppress precisely.

A :class:`LintContext` wraps one parsed module with everything a rule
needs — the AST, a parent map for scope questions, the resolved import
table for "what does this call actually name", and the raw source lines
for suppression comments.  Each :class:`Rule` gets the same context, so
the file is read and parsed exactly once however many rules run.

Adding a rule is ~30 lines: subclass :class:`Rule`, set ``id`` /
``severity`` / ``packages``, implement :meth:`Rule.check` as a generator
over ``ctx.walk()``, and append an instance to
:data:`repro.simlint.rules.ALL_RULES` (with fixtures in
``tests/simlint/fixtures``).

Rules that need to see *across* files — the interprocedural shard-safety
analyses SL010–SL012 — subclass :class:`ProjectRule` instead and
implement :meth:`ProjectRule.check_project` over a :class:`Project`,
which holds every parsed :class:`LintContext` of the run plus a shared
cache for expensive whole-program artifacts (the call graph and flow
summaries built by :mod:`repro.simlint.callgraph` /
:mod:`repro.simlint.flow`).
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union


class Severity(enum.Enum):
    """How a finding affects the exit code: errors gate, warnings inform."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    module: str
    line: int
    col: int
    message: str
    fix_hint: str

    def format_text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.severity.value} {self.rule_id}: {self.message}\n"
                f"    hint: {self.fix_hint}")

    def to_json(self) -> Dict[str, object]:
        return {"rule": self.rule_id, "severity": self.severity.value,
                "path": self.path, "module": self.module, "line": self.line,
                "col": self.col, "message": self.message,
                "fix_hint": self.fix_hint}


#: ``# simlint: disable=SL001[,SL002]`` — suppress on this line only.
_LINE_SUPPRESS = re.compile(
    r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+?)(?:\s*--.*)?$")
#: ``# simlint: disable-file=SL003`` — suppress for the whole file.
_FILE_SUPPRESS = re.compile(
    r"#\s*simlint:\s*disable-file=([A-Za-z0-9_,\s]+?)(?:\s*--.*)?$")


def _parse_rule_list(raw: str) -> frozenset:
    return frozenset(part.strip().upper() for part in raw.split(",")
                     if part.strip())


class LintContext:
    """One module, parsed once, shared by every rule.

    Attributes
    ----------
    path:
        Display path of the file (as given to the linter).
    module:
        Dotted module name inferred from the path (``repro.core.call``);
        files outside a ``repro`` tree get a best-effort stem name.
    package:
        First package segment under ``repro`` (``"core"`` for
        ``repro.core.call``, ``""`` for top-level modules like
        ``repro.cli``, ``None`` when the file is not under ``repro``).
    imports:
        Local name → imported module (``{"it": "itertools"}``).
    from_imports:
        Local name → dotted origin (``{"count": "itertools.count"}``).
    """

    def __init__(self, source: str, path: str,
                 module: Optional[str] = None) -> None:
        self.path = path
        self.source_lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.module = module if module is not None else _module_for_path(path)
        self.package = _package_of(self.module)

        self._parents: Dict[int, ast.AST] = {}
        self._nodes: List[ast.AST] = []
        for node in ast.walk(self.tree):
            self._nodes.append(node)
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node

        self.imports: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        for node in self._nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or
                                 alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

        self.line_suppressions: Dict[int, frozenset] = {}
        self.file_suppressions: frozenset = frozenset()
        for lineno, line in enumerate(self.source_lines, start=1):
            m = _FILE_SUPPRESS.search(line)
            if m:
                self.file_suppressions |= _parse_rule_list(m.group(1))
                continue
            m = _LINE_SUPPRESS.search(line)
            if m:
                self.line_suppressions[lineno] = _parse_rule_list(m.group(1))

        # A finding on a decorated def/class carries the ``def`` line
        # (py3.8+ semantics), but the natural place to annotate is often
        # the decorator above it — honor suppressions on either.
        self._companion_lines: Dict[int, Tuple[int, ...]] = {}
        for node in self._nodes:
            decorators = getattr(node, "decorator_list", None)
            if decorators:
                self._companion_lines[node.lineno] = tuple(
                    d.lineno for d in decorators)

    # -- scope helpers ---------------------------------------------------
    def walk(self) -> Sequence[ast.AST]:
        """Every node of the module, in ``ast.walk`` order (cached)."""
        return self._nodes

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Innermost function/lambda containing ``node``, if any."""
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                return cur
            cur = self.parent(cur)
        return None

    def is_module_or_class_level(self, node: ast.AST) -> bool:
        """True when no function/lambda encloses ``node`` (shared state)."""
        return self.enclosing_function(node) is None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return cur
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
            cur = self.parent(cur)
        return None

    # -- name resolution -------------------------------------------------
    def resolve(self, node: ast.AST) -> Tuple[str, bool]:
        """Dotted name of an expression plus whether its root is imported.

        ``time.time`` under ``import time`` resolves to
        ``("time.time", True)``; ``self.sim.now`` resolves to
        ``("self.sim.now", False)``.  The boolean keeps rules from
        flagging local variables that merely shadow module names.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return "", False
        root = cur.id
        if root in self.from_imports:
            resolved = self.from_imports[root]
            known = True
        elif root in self.imports:
            resolved = self.imports[root]
            known = True
        else:
            resolved = root
            known = False
        parts.append(resolved)
        return ".".join(reversed(parts)), known

    # -- suppression -----------------------------------------------------
    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rid = rule_id.upper()
        if rid in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        for lineno in (line,) + self._companion_lines.get(line, ()):
            on_line = self.line_suppressions.get(lineno, frozenset())
            if rid in on_line or "ALL" in on_line:
                return True
        return False

    # -- finding factory -------------------------------------------------
    def finding(self, rule: "Rule", node: ast.AST,
                message: str) -> Finding:
        return Finding(rule_id=rule.id, severity=rule.severity,
                       path=self.path, module=self.module,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message, fix_hint=rule.fix_hint)


class Rule:
    """One checkable clause of the determinism contract.

    Subclasses set the class attributes and implement :meth:`check`;
    ``packages`` limits a rule to ``repro`` subpackages (``frozenset``
    of first segments, ``""`` meaning top-level modules); ``None``
    applies everywhere, including files outside ``repro``.
    """

    id: str = "SL000"
    severity: Severity = Severity.ERROR
    title: str = ""
    fix_hint: str = ""
    packages: Optional[frozenset] = None

    def applies_to(self, ctx: LintContext,
                   include_foreign: bool = False) -> bool:
        if self.packages is None:
            return True
        if ctx.package is None:
            # Files outside the repro tree (benchmarks/, tests/ helpers)
            # are normally out of scope; ``--include-foreign`` opts the
            # explicitly selected rules into them.
            return include_foreign
        return ctx.package in self.packages

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


class Project:
    """Every parsed module of one lint run, for whole-program rules.

    ``cache`` is shared by all :class:`ProjectRule` instances of the
    run, so the call graph / flow summaries are built once however many
    interprocedural rules consume them.
    """

    def __init__(self, contexts: Sequence[LintContext]) -> None:
        self.contexts: List[LintContext] = list(contexts)
        self.by_module: Dict[str, LintContext] = {
            ctx.module: ctx for ctx in self.contexts}
        self.cache: Dict[str, object] = {}


class ProjectRule(Rule):
    """A rule whose scope is the whole lint run, not one module.

    ``check_project`` sees every module at once (via :class:`Project`)
    and may resolve calls across files; findings still carry the
    specific file/line they anchor to, and per-line suppressions apply
    exactly as for single-file rules.  Package scoping (``packages``)
    is enforced by the engine on each finding's *owning module*, so an
    interprocedural analysis may traverse helpers outside its scope but
    only ever reports inside it.
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        # Single-module entry points wrap the context in a one-file
        # project; intra-module interprocedural findings still surface.
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


def _module_for_path(path: str) -> str:
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    # Use the *last* "repro" segment so fixture trees shaped like
    # tests/simlint/fixtures/repro/core/x.py lint as repro.core.x.
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return parts[-1] if parts else ""


def _package_of(module: str) -> Optional[str]:
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) <= 2:
        return ""          # repro.cli, repro.scenarios, repro itself
    return parts[1]        # repro.core.call -> "core"


def _syntax_error_finding(exc: SyntaxError, path: str,
                          module: Optional[str]) -> Finding:
    return Finding(rule_id="SL000", severity=Severity.ERROR, path=path,
                   module=module or "", line=exc.lineno or 1,
                   col=(exc.offset or 1) - 1,
                   message=f"syntax error: {exc.msg}",
                   fix_hint="simlint needs parseable Python")


def _run_rules(contexts: Sequence[LintContext], rules: Sequence[Rule],
               include_foreign: bool = False) -> List[Finding]:
    """Per-file rules on each context, then project rules over all."""
    findings: List[Finding] = []
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    for ctx in contexts:
        for rule in file_rules:
            if not rule.applies_to(ctx, include_foreign):
                continue
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
    if project_rules:
        project = Project(contexts)
        by_path = {ctx.path: ctx for ctx in contexts}
        for rule in project_rules:
            for finding in rule.check_project(project):
                ctx = by_path.get(finding.path)
                if ctx is None:
                    findings.append(finding)
                    continue
                if not rule.applies_to(ctx, include_foreign):
                    continue
                if not ctx.is_suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_source(source: str, path: str, rules: Sequence[Rule],
                module: Optional[str] = None) -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    try:
        ctx = LintContext(source, path, module=module)
    except SyntaxError as exc:
        return [_syntax_error_finding(exc, path, module)]
    return _run_rules([ctx], rules)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of .py files."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py":
            yield p
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")


def lint_paths(paths: Iterable[Union[str, Path]],
               rules: Sequence[Rule],
               include_foreign: bool = False) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` with ``rules``.

    All files are parsed before any project-scoped rule runs, so the
    interprocedural analyses see the whole call graph of the run.
    ``include_foreign`` extends package-scoped rules to files outside
    the ``repro`` tree (the benchmarks/tests lint lane).
    """
    contexts: List[LintContext] = []
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        try:
            contexts.append(LintContext(source, str(file)))
        except SyntaxError as exc:
            findings.append(_syntax_error_finding(exc, str(file), None))
    findings.extend(_run_rules(contexts, rules, include_foreign))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
