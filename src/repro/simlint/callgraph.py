"""Whole-program function index and call resolution for simlint.

The interprocedural shard-safety rules (SL010–SL012) need to answer
"which function does this call site name, and what does that function
do with each argument?" across every module of a lint run.  This module
provides the structural half: a :class:`ProjectIndex` over all parsed
:class:`~repro.simlint.engine.LintContext` objects (every ``def`` —
top-level, method, or nested — becomes a :class:`FunctionInfo`), plus
best-effort, deliberately conservative call resolution:

* ``name(...)``        → nested def in the caller, else a top-level def
  in the same module, else a ``from``-imported top-level def of another
  indexed module;
* ``self.m(...)``      → method ``m`` of the caller's own class (base
  classes are *not* chased — unresolved calls report nothing);
* ``mod.f(...)``       → top-level ``f`` of the imported module when
  that module is part of the run.

Unresolvable calls resolve to ``None``; the flow layer treats them as
opaque (no findings), so imprecision here can only cause false
negatives, never false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .engine import LintContext, Project

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One ``def`` anywhere in the project, with resolution context."""

    qualname: str                      #: ``module:Class.method`` form
    name: str
    node: FunctionNode
    ctx: LintContext
    class_name: Optional[str]          #: enclosing class, if a method
    params: Tuple[str, ...]            #: positional parameter names
    #: Nested ``def`` name → FunctionInfo, for local-call resolution.
    nested: Dict[str, "FunctionInfo"] = field(default_factory=dict)
    parent: Optional["FunctionInfo"] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None


def _positional_params(node: FunctionNode) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names.extend(a.arg for a in args.args)
    return tuple(names)


class ProjectIndex:
    """Index of every function in a :class:`Project`, plus call edges."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        #: module → top-level def name → info
        self._top_level: Dict[str, Dict[str, FunctionInfo]] = {}
        #: (module, class) → method name → info
        self._methods: Dict[Tuple[str, str], Dict[str, FunctionInfo]] = {}
        #: id(def node) → info, for walking from AST nodes.
        self._by_node: Dict[int, FunctionInfo] = {}
        for ctx in project.contexts:
            self._index_module(ctx)

    # -- construction ----------------------------------------------------
    def _index_module(self, ctx: LintContext) -> None:
        module = ctx.module
        self._top_level.setdefault(module, {})
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            enclosing = ctx.enclosing_function(node)
            cls = ctx.enclosing_class(node)
            class_name = cls.name if cls is not None else None
            parent = (self._by_node.get(id(enclosing))
                      if enclosing is not None else None)
            if parent is not None:
                qual = f"{parent.qualname}.<locals>.{node.name}"
            elif class_name is not None:
                qual = f"{module}:{class_name}.{node.name}"
            else:
                qual = f"{module}:{node.name}"
            info = FunctionInfo(
                qualname=qual, name=node.name, node=node, ctx=ctx,
                class_name=class_name if parent is None else None,
                params=_positional_params(node), parent=parent)
            self.functions[qual] = info
            self._by_node[id(node)] = info
            if parent is not None:
                parent.nested[node.name] = info
            elif class_name is not None:
                self._methods.setdefault(
                    (module, class_name), {})[node.name] = info
            else:
                self._top_level[module][node.name] = info

    # -- lookup ----------------------------------------------------------
    def info_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        return self._by_node.get(id(node))

    def all_functions(self) -> List[FunctionInfo]:
        """Deterministic (qualname-sorted) list of every function."""
        return [self.functions[q] for q in sorted(self.functions)]

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort callee of ``call`` as written inside ``caller``."""
        fn = call.func
        ctx = caller.ctx
        if isinstance(fn, ast.Name):
            # Nested defs shadow module-level ones, mirroring Python.
            cur: Optional[FunctionInfo] = caller
            while cur is not None:
                if fn.id in cur.nested:
                    return cur.nested[fn.id]
                cur = cur.parent
            local = self._top_level.get(ctx.module, {}).get(fn.id)
            if local is not None:
                return local
            origin = ctx.from_imports.get(fn.id)
            if origin is not None:
                module, _, name = origin.rpartition(".")
                return self._top_level.get(module, {}).get(name)
            return None
        if isinstance(fn, ast.Attribute):
            value = fn.value
            if isinstance(value, ast.Name) and value.id == "self":
                cls = self._enclosing_class_name(caller)
                if cls is None:
                    return None
                return self._methods.get((ctx.module, cls), {}).get(fn.attr)
            if isinstance(value, ast.Name) and value.id in ctx.imports:
                module = ctx.imports[value.id]
                return self._top_level.get(module, {}).get(fn.attr)
        return None

    @staticmethod
    def _enclosing_class_name(info: FunctionInfo) -> Optional[str]:
        cur: Optional[FunctionInfo] = info
        while cur is not None:
            if cur.class_name is not None:
                return cur.class_name
            cur = cur.parent
        return None


def project_index(project: Project) -> ProjectIndex:
    """The (cached) :class:`ProjectIndex` of ``project``."""
    index = project.cache.get("callgraph.index")
    if index is None:
        index = ProjectIndex(project)
        project.cache["callgraph.index"] = index
    return index  # type: ignore[return-value]
