"""``python -m repro lint`` — the simlint command-line front end.

Exit status is 0 when no error-severity findings remain after
suppression comments and the optional baseline, 1 otherwise (2 for
usage errors).  ``--format json`` emits a stable machine-readable
document; ``--format github`` emits ``::error``/``::warning`` workflow
annotations so CI findings land on the offending diff line.
``--write-baseline`` snapshots the current findings so a new rule can
be introduced without blocking merges on legacy violations, and
``--migrate-baseline`` rewrites an old baseline to the current
fingerprint scheme without widening it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .baseline import Baseline
from .engine import (
    Finding,
    ProjectRule,
    Severity,
    iter_python_files,
    lint_paths,
)
from .rules import ALL_RULES, rules_by_id


def default_lint_root() -> Path:
    """The installed ``repro`` package tree (works from any cwd)."""
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & sim-safety static analysis (SL001-SL015)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the repro package tree)")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default=None,
                        help="output format (default: text); 'github' "
                             "emits workflow ::error annotations")
    parser.add_argument("--json", action="store_true",
                        help="alias for --format json")
    parser.add_argument("--baseline", metavar="FILE",
                        help="mute findings recorded in this baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--migrate-baseline", metavar="FILE",
                        help="re-key FILE to the current fingerprint "
                             "version, keeping only entries that still "
                             "match a finding, and exit 0")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--include-foreign", action="store_true",
                        help="run package-scoped rules on files outside "
                             "the repro tree (benchmarks/, tests/)")
    parser.add_argument("--exclude", metavar="SUBSTR", action="append",
                        default=[],
                        help="skip files whose path contains SUBSTR "
                             "(repeatable)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run per-file rules across N worker "
                             "processes; the interprocedural rules "
                             "(which need the whole call graph) run "
                             "concurrently in the parent (default: 1)")
    return parser


def _file_rule_chunk(job: "Tuple[List[str], Optional[List[str]], bool]"
                     ) -> List[Finding]:
    """Pool worker: per-file rules over one chunk of files.

    Rules travel as ids (instances need not pickle); SL000 syntax
    errors are filtered here because the parent's project pass reports
    them once per broken file already.
    """
    paths, rule_ids, include_foreign = job
    wanted = rules_by_id() if rule_ids is None else {
        rid: rules_by_id()[rid] for rid in rule_ids}
    file_rules = [r for r in wanted.values()
                  if not isinstance(r, ProjectRule)]
    found = lint_paths(paths, file_rules, include_foreign=include_foreign)
    return [f for f in found if f.rule_id != "SL000"]


def _lint_parallel(files: List[Path], rules, include_foreign: bool,
                   jobs: int) -> List[Finding]:
    """Split the run: file rules fan out over a process pool while the
    parent runs the project (interprocedural) rules — which need every
    file's AST at once — concurrently.  Output is identical to the
    serial path (asserted by tests/simlint/test_cli.py)."""
    import multiprocessing

    rule_ids = [r.id for r in rules]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    jobs = max(1, min(jobs, len(files)))
    chunks = [[str(f) for f in files[i::jobs]] for i in range(jobs)]
    with multiprocessing.Pool(jobs) as pool:
        async_result = pool.map_async(
            _file_rule_chunk,
            [(chunk, rule_ids, include_foreign) for chunk in chunks])
        # Project rules (plus SL000 for unparseable files) in parent.
        findings = lint_paths(files, project_rules,
                              include_foreign=include_foreign)
        for chunk_findings in async_result.get():
            findings.extend(chunk_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _select_rules(raw: Optional[str]):
    if not raw:
        return ALL_RULES
    by_id = rules_by_id()
    chosen = []
    for rid in raw.split(","):
        rid = rid.strip().upper()
        if rid not in by_id:
            raise SystemExit(
                f"repro lint: unknown rule {rid!r} "
                f"(have {', '.join(sorted(by_id))})")
        chosen.append(by_id[rid])
    return tuple(chosen)


def _report_text(findings: Sequence[Finding], n_files_hint: str) -> None:
    for finding in findings:
        print(finding.format_text())
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    print(f"simlint: {errors} error(s), {warnings} warning(s) "
          f"{n_files_hint}")


def _report_json(findings: Sequence[Finding], baseline: Optional[str],
                 n_files: int) -> None:
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    doc = {
        "tool": "simlint",
        "version": 1,
        "files_checked": n_files,
        "baseline": baseline,
        "n_errors": errors,
        "n_warnings": len(findings) - errors,
        "findings": [f.to_json() for f in findings],
    }
    print(json.dumps(doc, indent=1))


def _escape_message(value: str) -> str:
    """Escape annotation *message* data per the workflow-command rules."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def _escape_property(value: str) -> str:
    """Escape annotation *property* values (also ``:`` and ``,``)."""
    return _escape_message(value).replace(":", "%3A").replace(",", "%2C")


def _report_github(findings: Sequence[Finding], n_files: int) -> None:
    """GitHub Actions workflow annotations, one per finding.

    ``::error file=...,line=...::message`` lines attach to the PR diff;
    everything else in the job log is plain text, so the trailing
    summary line stays human-readable.
    """
    for f in findings:
        level = ("error" if f.severity is Severity.ERROR else "warning")
        message = _escape_message(f"{f.message} (hint: {f.fix_hint})")
        print(f"::{level} file={_escape_property(f.path)},"
              f"line={f.line},col={f.col + 1},"
              f"title={_escape_property('simlint ' + f.rule_id)}"
              f"::{message}")
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    print(f"simlint: {errors} error(s), {len(findings) - errors} "
          f"warning(s) in {n_files} file(s)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = _select_rules(args.select)
    out_format = args.format or ("json" if args.json else "text")
    paths: List[str] = list(args.paths) or [str(default_lint_root())]

    try:
        files = [f for f in iter_python_files(paths)
                 if not any(sub in f.as_posix() for sub in args.exclude)]
        if args.jobs > 1 and files:
            findings = _lint_parallel(files, rules,
                                      args.include_foreign, args.jobs)
        else:
            findings = lint_paths(files, rules,
                                  include_foreign=args.include_foreign)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(f"simlint: wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    if args.migrate_baseline:
        try:
            old = Baseline.load(args.migrate_baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: cannot read baseline "
                  f"{args.migrate_baseline}: {exc}", file=sys.stderr)
            return 2
        # Re-fingerprint exactly the findings the old baseline covers;
        # stale entries (no longer matching anything) drop out, which
        # is the ratchet working, not data loss.
        fresh_ids = {id(f) for f in old.filter(findings)}
        covered = [f for f in findings if id(f) not in fresh_ids]
        Baseline.from_findings(covered).save(args.migrate_baseline)
        print(f"simlint: migrated {args.migrate_baseline} to version 2 "
              f"({len(covered)} finding(s) kept, "
              f"{len(old) - len(covered)} stale entr(y|ies) dropped)")
        return 0

    if args.baseline:
        try:
            findings = Baseline.load(args.baseline).filter(findings)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: cannot read baseline {args.baseline}: "
                  f"{exc}", file=sys.stderr)
            return 2

    if out_format == "json":
        _report_json(findings, args.baseline, len(files))
    elif out_format == "github":
        _report_github(findings, len(files))
    else:
        _report_text(findings, f"in {len(files)} file(s)")
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
