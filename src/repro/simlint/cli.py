"""``python -m repro lint`` — the simlint command-line front end.

Exit status is 0 when no error-severity findings remain after
suppression comments and the optional baseline, 1 otherwise (2 for
usage errors).  ``--json`` emits a stable machine-readable document for
CI; ``--write-baseline`` snapshots the current findings so a new rule
can be introduced without blocking merges on legacy violations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline
from .engine import Finding, Severity, lint_paths
from .rules import ALL_RULES, rules_by_id


def default_lint_root() -> Path:
    """The installed ``repro`` package tree (works from any cwd)."""
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & sim-safety static analysis (SL001-SL007)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the repro package tree)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON document")
    parser.add_argument("--baseline", metavar="FILE",
                        help="mute findings recorded in this baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    return parser


def _select_rules(raw: Optional[str]):
    if not raw:
        return ALL_RULES
    by_id = rules_by_id()
    chosen = []
    for rid in raw.split(","):
        rid = rid.strip().upper()
        if rid not in by_id:
            raise SystemExit(
                f"repro lint: unknown rule {rid!r} "
                f"(have {', '.join(sorted(by_id))})")
        chosen.append(by_id[rid])
    return tuple(chosen)


def _report_text(findings: Sequence[Finding], n_files_hint: str) -> None:
    for finding in findings:
        print(finding.format_text())
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    print(f"simlint: {errors} error(s), {warnings} warning(s) "
          f"{n_files_hint}")


def _report_json(findings: Sequence[Finding], baseline: Optional[str],
                 n_files: int) -> None:
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    doc = {
        "tool": "simlint",
        "version": 1,
        "files_checked": n_files,
        "baseline": baseline,
        "n_errors": errors,
        "n_warnings": len(findings) - errors,
        "findings": [f.to_json() for f in findings],
    }
    print(json.dumps(doc, indent=1))


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = _select_rules(args.select)
    paths: List[str] = list(args.paths) or [str(default_lint_root())]

    try:
        from .engine import iter_python_files
        files = list(iter_python_files(paths))
        findings = lint_paths(files, rules)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(f"simlint: wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    if args.baseline:
        try:
            findings = Baseline.load(args.baseline).filter(findings)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: cannot read baseline {args.baseline}: "
                  f"{exc}", file=sys.stderr)
            return 2

    if args.json:
        _report_json(findings, args.baseline, len(files))
    else:
        _report_text(findings, f"in {len(files)} file(s)")
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
