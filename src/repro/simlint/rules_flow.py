"""The interprocedural shard-safety rules, backed by ``simlint.flow``.

All three rules share one :class:`~repro.simlint.flow.FlowAnalysis`
per lint run (cached on the :class:`~repro.simlint.engine.Project`), so
the call graph and the taint fixpoint are computed once.
"""

from __future__ import annotations

from typing import Iterator

from .engine import Finding, Project, ProjectRule, Severity
from .flow import flow_analysis


class _FlowRule(ProjectRule):
    """Shared dispatch: pick this rule's findings out of the analysis."""

    packages = frozenset({"core", "parsim"})

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = flow_analysis(project)
        for rule_id, ctx, node, message in analysis.findings():
            if rule_id == self.id:
                yield ctx.finding(self, node, message)


class AliasedCrossRegionAccess(_FlowRule):
    """SL010 — aliased/interprocedural cross-shard access.

    The semantic superset of SL009: where SL009 pattern-matches
    ``self.schedulers[r].poke()`` written in one expression, SL010
    follows the value — through local aliases
    (``s = self.schedulers[r]; s.poke()``), tuple unpacking, element
    subscripts (``self.workers_by_region[r][0]``), helper returns
    (``self._sched(r).poke()``), and calls whose summaries say the
    callee deep-uses the argument or uses it as a region key.  Direct
    single-expression accesses are *excluded* — those are SL009's
    findings, and a suppressed SL009 must not reappear as SL010.
    """

    id = "SL010"
    severity = Severity.ERROR
    title = "aliased cross-region access bypassing the shard mailbox"
    fix_hint = ("route the interaction through the inter-shard mailbox "
                "(ShardPlatform.send / RemoteRegionHandle); only "
                "self.region-keyed components may be touched directly, "
                "however many assignments or helper calls sit in "
                "between")


class ClosureCrossesShardBoundary(_FlowRule):
    """SL011 — shard-owned state captured by a Pipe-crossing closure.

    A lambda or nested function that closes over a region-keyed
    component and is handed to ``send(...)`` / packed into a
    ``ShardMessage`` / stored on a spawn-shipped spec will execute on
    the *other* side of the process boundary — where the captured
    object either fails to pickle or, worse, is a stale copy whose
    mutations silently diverge from the owning shard.
    """

    id = "SL011"
    severity = Severity.ERROR
    title = "shard-owned state captured in a boundary-crossing closure"
    fix_hint = ("ship plain data (region names, call ids, timestamps) "
                "across the mailbox and re-resolve components on the "
                "receiving shard; closures must not capture region-"
                "keyed state")


class NonOwningRegionMutation(_FlowRule):
    """SL012 — handler mutates state reached through a non-owning key.

    Cross-shard *reads* break replay parity; cross-shard *writes*
    corrupt the other shard's state outright (both copies now claim
    ownership of the same queue/worker).  This rule catches mutations
    SL009 cannot see: direct subscript stores
    (``self.counts_by_region[other] += 1`` has no attribute access),
    aliased attribute stores and mutating method calls, and arguments
    passed to callees whose summaries mutate them.
    """

    id = "SL012"
    severity = Severity.ERROR
    title = "mutation through a non-owning region key"
    fix_hint = ("send a mailbox message and let the owning shard apply "
                "the mutation in its own handler; never write through "
                "a region-keyed map except under self.region")


FLOW_RULES = (
    AliasedCrossRegionAccess(),
    ClosureCrossesShardBoundary(),
    NonOwningRegionMutation(),
)
