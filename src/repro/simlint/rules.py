"""The curated ruleset: this repo's determinism contract, as code.

Every rule cites the hazard it guards against; SL001 exists because the
hazard was real twice (the PR 2 ``core/platform.py`` call-id bug, and
the three sibling counters fixed alongside this linter).  See DESIGN.md
§"Static analysis & the determinism contract" for the prose version.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .engine import Finding, LintContext, Rule, Severity

#: Packages whose modules run *inside* a simulation — anything here may
#: execute between two `sim.run_until` calls and must be replayable.
SIM_PACKAGES = frozenset(
    {"sim", "core", "cluster", "downstream", "triggers", "workloads",
     "baselines", "parsim"})

#: Where SL002 (wall-clock/entropy) applies.  `sweep` and the benchmark
#: layer legitimately read `time.perf_counter` for wall-clock reporting,
#: so they are excluded; everything that runs under the simulated clock
#: is included.
CLOCK_PACKAGES = frozenset(
    {"sim", "core", "cluster", "downstream", "triggers", "workloads",
     "baselines"})

#: Modules whose objects cross the multiprocessing pickle boundary.
SWEEP_REACHABLE = frozenset({"sweep", "metrics", ""})


def _assign_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target


class ModuleMutableIdState(Rule):
    """SL001 — module-level mutable ID/counter state.

    A process-global ``itertools.count`` (or a private module-level
    mutable used as a counter/registry) makes the Nth run in a process
    differ from a fresh-process run: ids keep climbing, trace digests
    diverge, sweeps stop being comparable to serial runs.  This is the
    exact bug PR 2 fixed in ``core/platform.py``.
    """

    id = "SL001"
    severity = Severity.ERROR
    title = "module-level mutable ID state"
    fix_hint = ("allocate ids from per-instance state (e.g. a counter "
                "attribute on the owning platform/pool/engine object)")
    packages = SIM_PACKAGES

    _COUNTERISH = re.compile(r"(_?ids?|counter|counters|count|counts|seq|"
                             r"seqs|serials?|registry)$")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            if not ctx.is_module_or_class_level(node):
                continue
            value = node.value
            if value is None:
                continue
            if self._is_counter_factory(ctx, value):
                yield ctx.finding(
                    self, node,
                    "module-level itertools.count survives across "
                    "back-to-back runs in one process")
                continue
            if self._is_mutable_literal(value):
                for target in _assign_targets(node):
                    if (isinstance(target, ast.Name)
                            and target.id.startswith("_")
                            and self._COUNTERISH.search(target.id)):
                        yield ctx.finding(
                            self, node,
                            f"module-level mutable {target.id!r} used as "
                            "id/counter state leaks across runs")
                        break

    @staticmethod
    def _is_counter_factory(ctx: LintContext, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name, known = ctx.resolve(value.func)
        return known and name == "itertools.count"

    @staticmethod
    def _is_mutable_literal(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in {"list", "dict", "set", "defaultdict",
                                     "deque", "OrderedDict", "Counter"}
        return False


class WallClockLeak(Rule):
    """SL002 — wall-clock and entropy leaks into simulated code.

    ``time.time()`` inside the simulation makes a run depend on the host
    machine; ``uuid.uuid4()`` / ``os.urandom`` / module-level
    ``random.*`` make it depend on interpreter-global entropy.  All
    randomness must come from named ``sim.rng`` streams and all time
    from ``sim.now``.
    """

    id = "SL002"
    severity = Severity.ERROR
    title = "wall-clock / entropy leak"
    fix_hint = ("use sim.now for time and a named sim.rng.stream(...) "
                "for randomness; wall-clock belongs only in benchmark "
                "and sweep harness code")
    packages = CLOCK_PACKAGES

    _BANNED = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom",
        "random.SystemRandom", "secrets.token_bytes", "secrets.token_hex",
        "secrets.randbelow",
    })
    #: Module-level random.* functions share one implicitly-seeded global
    #: Random; everything except explicit seeded-instance construction.
    _RANDOM_OK = frozenset({"random.Random"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name, known = ctx.resolve(node.func)
            if not known:
                continue
            if name in self._BANNED:
                yield ctx.finding(
                    self, node,
                    f"{name}() leaks host wall-clock/entropy into "
                    "simulated code")
            elif (name.startswith("random.")
                  and name.count(".") == 1
                  and name not in self._RANDOM_OK):
                yield ctx.finding(
                    self, node,
                    f"{name}() draws from the process-global random "
                    "state instead of a named sim.rng stream")


class UnorderedIteration(Rule):
    """SL003 — iteration over freshly-built ``set``s in sim code.

    Iterating a set of objects (or id-keyed dict) visits elements in
    hash order, which for objects depends on memory addresses — run to
    run, the schedule changes.  Iterate sorted views or lists instead.
    """

    id = "SL003"
    severity = Severity.WARNING
    title = "iteration over unordered set"
    fix_hint = ("iterate a list or sorted(...) view; set iteration "
                "order depends on hashes and, for objects, on memory "
                "addresses")
    packages = SIM_PACKAGES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(ctx, it):
                    yield ctx.finding(
                        self, node,
                        "iterating a set: element order is hash-dependent "
                        "and not reproducible for objects")

    @staticmethod
    def _is_set_expr(ctx: LintContext, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            name, known = ctx.resolve(expr.func)
            return not known and name in {"set", "frozenset"}
        return False


class FloatTimeAccumulation(Rule):
    """SL004 — accumulating simulation time with ``+=`` outside the kernel.

    Repeated float addition drifts (``0.1 * 10 != 1.0``); two components
    accumulating "the same" clock independently will disagree after
    enough steps.  The kernel owns the clock — read ``sim.now``, or
    schedule at absolute times, instead of integrating deltas.
    """

    id = "SL004"
    severity = Severity.WARNING
    title = "float accumulation of simulated time"
    fix_hint = ("read sim.now (the kernel owns the clock) or track an "
                "absolute next-deadline instead of summing float deltas")
    packages = SIM_PACKAGES - frozenset({"sim"})

    _TIMEISH = re.compile(r"(^now$|^_now$|_time$)")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            name = self._target_name(node.target)
            if name is not None and self._TIMEISH.search(name):
                yield ctx.finding(
                    self, node,
                    f"accumulating simulated time into {name!r} with "
                    "'+='; float integration drifts from the kernel "
                    "clock")

    @staticmethod
    def _target_name(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Attribute):
            return target.attr
        if isinstance(target, ast.Name):
            return target.id
        return None


class PickleUnsafe(Rule):
    """SL005 — pickle-unsafe constructs in sweep-reachable code.

    The sweep engine ships specs and results across a ``spawn``
    multiprocessing boundary.  Lambdas stored on attributes and classes
    defined inside functions do not pickle; the failure surfaces only
    at fan-out time, far from the definition.
    """

    id = "SL005"
    severity = Severity.ERROR
    title = "pickle-unsafe construct in sweep-reachable code"
    fix_hint = ("use a module-level function / class instead; anything "
                "stored on sweep specs or results must survive pickling "
                "under the spawn start method")
    packages = SWEEP_REACHABLE

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.ClassDef):
                if ctx.enclosing_function(node) is not None:
                    yield ctx.finding(
                        self, node,
                        f"class {node.name!r} defined inside a function "
                        "cannot be pickled by the sweep fan-out")
                continue
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if not isinstance(value, ast.Lambda):
                    continue
                for target in _assign_targets(node):
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        yield ctx.finding(
                            self, node,
                            f"lambda stored on self.{target.attr} does "
                            "not pickle across the sweep boundary")
                        break
                    if (isinstance(target, ast.Name)
                            and ctx.enclosing_class(node) is not None
                            and ctx.enclosing_function(node) is None):
                        yield ctx.finding(
                            self, node,
                            "lambda stored on class field "
                            f"{target.id!r} does not pickle across the "
                            "sweep boundary")
                        break


class EventHandleMisuse(Rule):
    """SL006 — scheduling with negative delays / resurrecting handles.

    ``call_after(-x, ...)`` raises at runtime only when that path
    executes; a negative literal is always a bug.  Un-cancelling a
    :class:`ScheduledEvent` by writing ``handle.cancelled = False``
    corrupts the queue's lazy-deletion accounting — handles are
    one-shot, schedule a fresh one instead.
    """

    id = "SL006"
    severity = Severity.ERROR
    title = "event-handle misuse"
    fix_hint = ("delays must be >= 0 literals; never flip "
                "handle.cancelled back — create a new event via "
                "sim.call_after/call_at instead of re-arming")
    packages = None  # scheduling misuse is wrong everywhere

    _SCHEDULERS = frozenset({"call_after", "call_at", "timeout", "every",
                             "schedule", "push"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                fn = node.func
                name = (fn.attr if isinstance(fn, ast.Attribute)
                        else fn.id if isinstance(fn, ast.Name) else None)
                if (name in self._SCHEDULERS and node.args
                        and self._is_negative_literal(node.args[0])):
                    yield ctx.finding(
                        self, node,
                        f"{name}() called with a negative delay/time "
                        "literal — this always raises (or schedules in "
                        "the past)")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and target.attr == "cancelled"
                            and isinstance(node.value, ast.Constant)
                            and node.value.value is False
                            and not self._is_init_default(ctx, node,
                                                          target)):
                        yield ctx.finding(
                            self, node,
                            "re-arming a cancelled handle by writing "
                            ".cancelled = False corrupts event-queue "
                            "accounting")

    @staticmethod
    def _is_init_default(ctx: LintContext, node: ast.AST,
                         target: ast.Attribute) -> bool:
        """``self.cancelled = False`` inside ``__init__`` is construction,
        not re-arming."""
        if not (isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return False
        fn = ctx.enclosing_function(node)
        return isinstance(fn, ast.FunctionDef) and fn.name == "__init__"

    @staticmethod
    def _is_negative_literal(arg: ast.expr) -> bool:
        return (isinstance(arg, ast.UnaryOp)
                and isinstance(arg.op, ast.USub)
                and isinstance(arg.operand, ast.Constant)
                and isinstance(arg.operand.value, (int, float))
                and arg.operand.value > 0)


class PerEventMetricLookup(Rule):
    """SL007 — per-event metric/stream name lookups on the hot path.

    Building a metric or RNG-stream name with an f-string per event, or
    re-resolving ``registry.counter(...)`` inside a loop of a sim-clock
    handler, pays a string build plus a dict lookup for every simulated
    event — the exact overhead the PR 4 profiling round attributed to
    the component layer.  Handles are stable objects: resolve them once
    at component init (or memoize per name) and reuse them.
    """

    id = "SL007"
    severity = Severity.WARNING
    title = "per-event metric/stream lookup"
    fix_hint = ("bind a handle at component init (registry.bind_*() or a "
                "per-name dict filled once) and reuse it per event")
    packages = SIM_PACKAGES

    #: Registry resolution methods on MetricsRegistry / RngRegistry.
    _LOOKUPS = frozenset({"counter", "gauge", "histogram", "timeseries",
                          "stream"})
    #: Functions that run once per component, where resolving is the fix.
    _INIT_FUNCS = frozenset({"__init__", "__post_init__", "__set_name__"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._LOOKUPS
                    and node.args):
                continue
            fn = ctx.enclosing_function(node)
            if fn is None:
                continue  # module/class level runs once per import
            if (isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and fn.name in self._INIT_FUNCS):
                continue  # resolving at construction IS the fix
            name = node.func.attr
            if isinstance(node.args[0], ast.JoinedStr):
                yield ctx.finding(
                    self, node,
                    f"{name}() name built with an f-string inside "
                    f"{self._describe(fn)} — the string is rebuilt and "
                    "re-resolved on every invocation")
            elif self._in_loop(ctx, node, fn):
                yield ctx.finding(
                    self, node,
                    f"{name}() resolved inside a loop in "
                    f"{self._describe(fn)} — hoist the handle out of "
                    "the loop (or bind it at init)")

    @staticmethod
    def _describe(fn: ast.AST) -> str:
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return f"{fn.name}()"
        return "a lambda"

    @staticmethod
    def _in_loop(ctx: LintContext, node: ast.AST, fn: ast.AST) -> bool:
        cur = ctx.parent(node)
        while cur is not None and cur is not fn:
            if isinstance(cur, (ast.For, ast.AsyncFor, ast.While)):
                return True
            cur = ctx.parent(cur)
        return False


class WorkerScanInHandler(Rule):
    """SL008 — O(n) scan over a worker collection in a sim-clock handler.

    A loop (or comprehension) over the worker pool inside code that runs
    under the simulated clock costs O(fleet) per firing — the exact
    anti-pattern that capped the simulator at object-per-worker fleet
    sizes before the struct-of-arrays refactor.  Aggregates belong in
    ``WorkerArrays`` columns (``total_running``, ``capacity_threads``)
    or in incrementally-maintained sums; per-object scans are reserved
    for structural code (construction, registration) that runs O(1)
    times, which this rule exempts by function name.
    """

    id = "SL008"
    severity = Severity.WARNING
    title = "O(n) worker scan in a sim-clock handler"
    fix_hint = ("read WorkerArrays columns / O(1) aggregates "
                "(total_running, capacity_threads) or maintain the sum "
                "incrementally; keep per-worker-object loops in "
                "construction/registration code")
    packages = frozenset({"core", "parsim"})

    #: Names that denote a worker collection: ``workers``, ``_workers``,
    #: ``all_workers``, ``workers_by_region``, ...
    _WORKERISH = re.compile(r"(^|_)workers?(_by_region)?$")
    #: Functions that run O(1) times (construction/registration/teardown),
    #: where a per-object scan is structural, not per-event.
    _STRUCTURAL = re.compile(
        r"^(__init__|__post_init__|_?register\w*|_?add_\w+|_?build\w*|"
        r"_?setup\w*|start|stop|close|shutdown)$")
    #: Wrappers unwrapped to find the scanned collection:
    #: ``sorted(workers)``, ``enumerate(self.workers)``, ...
    _WRAPPERS = frozenset({"sorted", "list", "tuple", "enumerate",
                           "reversed"})
    #: Methods unwrapped likewise: ``workers_by_region.items()``, ...
    _METHODS = frozenset({"items", "values", "keys", "get", "copy"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            scanned = None
            for it in iters:
                scanned = self._worker_collection(it)
                if scanned is not None:
                    break
            if scanned is None:
                continue
            fn = ctx.enclosing_function(node)
            if fn is None:
                continue  # module level runs once per import
            if (isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and self._STRUCTURAL.match(fn.name)):
                continue
            yield ctx.finding(
                self, node,
                f"O(n) scan over {scanned!r} in "
                f"{self._describe(fn)} — per-worker loops in sim-clock "
                "handlers stop scaling with fleet size")

    def _worker_collection(self, expr: ast.expr) -> Optional[str]:
        """Name of the worker collection ``expr`` iterates, if any."""
        # Unwrap sorted(x)/enumerate(x)/... and x.items()/x.values()/...
        while isinstance(expr, ast.Call):
            fn = expr.func
            if isinstance(fn, ast.Name) and fn.id in self._WRAPPERS:
                if not expr.args:
                    return None
                expr = expr.args[0]
            elif isinstance(fn, ast.Attribute) and fn.attr in self._METHODS:
                expr = fn.value
            else:
                return None
        if isinstance(expr, ast.Attribute):
            return expr.attr if self._WORKERISH.search(expr.attr) else None
        if isinstance(expr, ast.Name):
            return expr.id if self._WORKERISH.search(expr.id) else None
        return None

    @staticmethod
    def _describe(fn: ast.AST) -> str:
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return f"{fn.name}()"
        return "a lambda"


class CrossRegionDirectAccess(Rule):
    """SL009 — cross-region component access bypassing the shard mailbox.

    Parallel mode partitions regions across shards; the only legal
    cross-region interactions are timestamped mailbox messages
    (``ShardPlatform.send`` / ``RemoteRegionHandle``).  Reaching into a
    region-keyed map (``schedulers[r]``, ``durableqs_by_region[r]``)
    and touching the component directly works by accident when both
    regions share a process — and silently breaks shard-count parity
    the moment they don't, because the interaction happens at the
    caller's instant instead of one network latency later.

    Exempt: the component's *own* region (``self.region`` key — the
    sanctioned synchronous path), the queue-handle surface that is
    identical for local shards and remote handles (``poll``/``ack``/
    ``submit``/...), structural code that runs O(1) times, and the
    mailbox's own receiving end (``handle_message`` / ``apply_*``).
    """

    id = "SL009"
    severity = Severity.ERROR
    title = "cross-region access bypassing the shard mailbox"
    fix_hint = ("route cross-region interactions through the inter-shard "
                "mailbox (ShardPlatform.send / RemoteRegionHandle); touch "
                "a region-keyed map's components directly only for the "
                "caller's own region (self.region)")
    packages = frozenset({"core", "parsim"})

    #: Maps keyed by region whose values are live components.
    _REGION_MAPS = re.compile(
        r"(_by_region$)|^(schedulers|workerlbs|queuelbs|frontends)$")
    #: The scheduler-facing queue surface, identical on a real DurableQ
    #: and a RemoteRegionHandle — calls through it are mailbox-safe.
    _HANDLE_METHODS = frozenset(
        {"poll", "ack", "nack", "extend_lease", "enqueue", "ready_count",
         "pending_count", "leased_count", "submit"})
    #: Construction/registration code plus the mailbox receiving end.
    _EXEMPT = re.compile(
        r"^(__init__|__post_init__|_?register\w*|_?add_\w+|_?build\w*|"
        r"_?setup\w*|start|stop|close|shutdown|handle_message|"
        r"_?apply\w*)$")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Attribute):
                continue
            base, key = self._subscripted_map(node.value)
            if base is None or not self._REGION_MAPS.search(base):
                continue
            if node.attr in self._HANDLE_METHODS:
                continue
            if self._is_self_region(key):
                continue
            fn = ctx.enclosing_function(node)
            if fn is None:
                continue  # module level runs once per import
            if (isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and self._EXEMPT.match(fn.name)):
                continue
            yield ctx.finding(
                self, node,
                f"direct {node.attr!r} access on {base!r}[...] — a "
                "cross-region interaction that bypasses the inter-shard "
                "mailbox and breaks shard-count parity")

    @staticmethod
    def _subscripted_map(expr: ast.expr):
        """``(map_name, region_key)`` when ``expr`` is ``map[key](...[i])``."""
        key = None
        while isinstance(expr, ast.Subscript):
            key = expr.slice
            expr = expr.value
        if key is None:
            return None, None
        if isinstance(expr, ast.Attribute):
            return expr.attr, key
        if isinstance(expr, ast.Name):
            return expr.id, key
        return None, None

    @staticmethod
    def _is_self_region(key: Optional[ast.expr]) -> bool:
        return (isinstance(key, ast.Attribute)
                and key.attr == "region"
                and isinstance(key.value, ast.Name)
                and key.value.id == "self")


class CallViewRetention(Rule):
    """SL016 — call view retained past its terminal transition.

    Since the call-record arena, a ``FunctionCall`` is a slot *view*:
    once the call terminalizes, the platform releases its arena row and
    the slot is recycled for a later arrival.  Storing the view into an
    attribute or a container *after* the terminal transition escapes it
    past that release point — a later dereference raises
    ``StaleCallError`` at best, and without the generation guard would
    silently read the next occupant's fields.  Terminal handlers may
    read the view freely (the release happens after they return); what
    they must not do is keep it.
    """

    id = "SL016"
    severity = Severity.ERROR
    title = "call view retained past its terminal transition"
    fix_hint = ("don't store a FunctionCall after setting a terminal "
                "state — snapshot the fields you need "
                "(call.trace_snapshot(...) or copy them out) before "
                "the handler returns; the arena slot is recycled")
    #: The release points live in repro.core (platform/parsim handlers);
    #: core is also where every terminal transition is written.
    packages = frozenset({"core"})

    _TERMINAL = frozenset({"COMPLETED", "FAILED", "EXPIRED", "THROTTLED"})
    _APPENDERS = frozenset({"append", "appendleft", "add", "push", "put",
                            "setdefault"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not isinstance(ctx.enclosing_function(node),
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(ctx, node)

    def _check_function(self, ctx: LintContext,
                        fn: ast.AST) -> Iterator[Finding]:
        # First terminal transition per local name:
        #     <name>.state = CallState.<TERMINAL>
        #     <name>.terminalize(...)          (the fused form)
        transitions: dict = {}
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)):
                target = node.targets[0]
                if (target.attr == "state"
                        and isinstance(target.value, ast.Name)
                        and self._is_terminal_state(node.value)):
                    name = target.value.id
                    line = transitions.get(name)
                    if line is None or node.lineno < line:
                        transitions[name] = node.lineno
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "terminalize"
                    and isinstance(node.func.value, ast.Name)):
                name = node.func.value.id
                line = transitions.get(name)
                if line is None or node.lineno < line:
                    transitions[name] = node.lineno
        if not transitions:
            return
        # Escapes of that name on a later line: attribute stores,
        # subscript stores, and container-append calls.  Reads (and
        # plain call arguments, e.g. listener callbacks that run before
        # the release) are fine.
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                value = node.value
                if not (isinstance(value, ast.Name)
                        and value.id in transitions
                        and node.lineno > transitions[value.id]):
                    continue
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in node.targets):
                    yield ctx.finding(
                        self, node,
                        f"{value.id!r} is stored after its terminal "
                        f"transition on line {transitions[value.id]} — "
                        "the arena slot is released when the handler "
                        "returns, so this reference goes stale")
            elif isinstance(node, ast.Call):
                fn_expr = node.func
                if not (isinstance(fn_expr, ast.Attribute)
                        and fn_expr.attr in self._APPENDERS):
                    continue
                for arg in node.args:
                    if (isinstance(arg, ast.Name) and arg.id in transitions
                            and node.lineno > transitions[arg.id]):
                        yield ctx.finding(
                            self, node,
                            f"{arg.id!r} escapes into a container "
                            f"(.{fn_expr.attr}) after its terminal "
                            f"transition on line {transitions[arg.id]} — "
                            "the arena slot is released when the "
                            "handler returns, so this reference goes "
                            "stale")

    @classmethod
    def _is_terminal_state(cls, value: ast.expr) -> bool:
        return (isinstance(value, ast.Attribute)
                and value.attr in cls._TERMINAL
                and isinstance(value.value, ast.Name)
                and value.value.id == "CallState")


from .rules_flow import FLOW_RULES  # noqa: E402  (needs Rule defined)
from .rules_typestate import TYPESTATE_RULES  # noqa: E402

#: The registry walked by the CLI; order is display order.
ALL_RULES = (
    ModuleMutableIdState(),
    WallClockLeak(),
    UnorderedIteration(),
    FloatTimeAccumulation(),
    PickleUnsafe(),
    EventHandleMisuse(),
    PerEventMetricLookup(),
    WorkerScanInHandler(),
    CrossRegionDirectAccess(),
) + FLOW_RULES + TYPESTATE_RULES + (CallViewRetention(),)


def rules_by_id() -> dict:
    return {rule.id: rule for rule in ALL_RULES}
