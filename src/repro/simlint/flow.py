"""Ownership-taint dataflow for the shard-safety rules SL010–SL012.

SL009 is syntactic: it flags ``self.schedulers[r].poke()`` written in
one expression, and nothing else.  This module supplies the semantic
version.  It runs a small interprocedural analysis over the whole lint
run (every :class:`~repro.simlint.engine.LintContext`, connected by
:mod:`repro.simlint.callgraph`):

**Lattice.**  Values derived from region-keyed component maps
(``durableqs_by_region[r]``, ``schedulers[r]``, WorkerArrays rows
``workers_by_region[r][i]``, per-shard rate limiters …) carry a
*shard-owned* taint ``RegionTaint(map, key)``.  The key half is a tiny
lattice: ``owned`` (``self.region``, aliases of it, loop variables over
``owned_regions`` or over the map's own keys/items — the sanctioned
local surface), ``("param", fn, i)`` (abstract — the function's caller
decides, via summaries), and ``nonowned`` (everything else: foreign
literals, attributes, unrelated locals).

**Alias tracking.**  A linear forward walk per function propagates
taint through assignments, tuple unpacking, element subscripts
(``workers_by_region[r][0]`` rows stay tainted), returns of helpers,
and method receivers.  Nested ``def``s and lambdas are walked with the
enclosing environment, so closures see the taints they capture.

**Summaries.**  Each function gets a fixpoint summary: which params it
deep-uses or mutates as *values*, which params it uses as *region keys*
(and whether the selected component is read or mutated), and whether it
returns a tainted value (keyed how).  Call sites consult callee
summaries, so ``self._kick(other_region)`` is reported even though the
map access lives inside ``_kick``.

Findings (dispatched by :mod:`repro.simlint.rules_flow`):

* ``deep`` use of a ``nonowned``-keyed taint   → SL010
* taint captured by a closure handed to a Pipe-crossing call → SL011
* mutation of a ``nonowned``-keyed taint (aliased or a direct
  subscript store, which SL009 cannot see)    → SL012

Direct ``map[key].attr`` expressions are *excluded* here — they are
SL009's findings, and suppressing SL009 on such a line must not
resurface the same defect under SL010.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .callgraph import FunctionInfo, ProjectIndex, project_index
from .engine import LintContext, Project

# -- the key lattice ----------------------------------------------------
OWNED = "owned"
NONOWNED = "nonowned"
#: ``("param", qualname, index)`` — abstract, resolved at call sites.
KeyRef = Union[str, Tuple[str, str, int]]

#: Mirrors SL009's notion of a region-keyed component map.  Kept as a
#: separate copy so rules.py and flow.py have no import cycle; a test
#: asserts the two stay identical.
REGION_MAPS = re.compile(
    r"(_by_region$)|^(schedulers|workerlbs|queuelbs|frontends)$")
#: The queue surface identical on DurableQ and RemoteRegionHandle.
HANDLE_METHODS = frozenset(
    {"poll", "ack", "nack", "extend_lease", "enqueue", "ready_count",
     "pending_count", "leased_count", "submit"})
#: Structural code plus the mailbox receiving end (same as SL009).
EXEMPT = re.compile(
    r"^(__init__|__post_init__|_?register\w*|_?add_\w+|_?build\w*|"
    r"_?setup\w*|start|stop|close|shutdown|handle_message|"
    r"_?apply\w*)$")

#: Method calls that mutate their receiver; a cross-shard *read* is a
#: parity hazard (SL010), a cross-shard *write* corrupts the other
#: shard's state outright (SL012).
MUTATING_METHODS = frozenset(
    {"append", "appendleft", "extend", "insert", "remove", "discard",
     "clear", "pop", "popitem", "popleft", "update", "setdefault",
     "sort", "reverse", "add", "set", "put", "push", "publish",
     "reset", "cancel", "execute", "fail", "recover", "adjust",
     "set_rate", "take", "record", "observe", "inc", "dec", "write"})

#: Calls whose arguments cross the inter-shard Pipe (or are stored on
#: spawn-shipped specs): closures in them escape the owning shard.
CROSSING_ATTRS = frozenset({"send"})
CROSSING_NAMES = frozenset({"ShardMessage", "RunSpec", "ParsimSpec"})

#: Loops over these iterate exactly the shard's own regions.
_OWNED_ITERS = frozenset({"owned_regions"})

_MAX_PASSES = 10


@dataclass(frozen=True)
class RegionTaint:
    """A value selected out of a region-keyed map by ``key``."""

    map_name: str
    key: KeyRef
    key_desc: str = ""

    def with_key(self, key: KeyRef, desc: str) -> "RegionTaint":
        return RegionTaint(self.map_name, key, desc)


@dataclass(frozen=True)
class ParamValue:
    """The N-th positional parameter of a function, as an opaque value."""

    qual: str
    index: int


Taint = Union[RegionTaint, ParamValue]


@dataclass
class Summary:
    """What a function does with its parameters (fixpoint-computed)."""

    deep: Set[int] = field(default_factory=set)
    mut: Set[int] = field(default_factory=set)
    key_deep: Set[int] = field(default_factory=set)
    key_mut: Set[int] = field(default_factory=set)
    returns: Optional[Tuple[str, KeyRef]] = None


@dataclass
class _Use:
    """A deep read or mutation of a tainted value."""

    node: ast.AST
    taint: Taint
    mutating: bool
    what: str
    owner: FunctionInfo


@dataclass
class _ArgUse:
    param_index: int
    value_taint: Optional[Taint]
    key_class: Optional[KeyRef]
    key_desc: str


@dataclass
class _CallUse:
    node: ast.Call
    callee: FunctionInfo
    args: List[_ArgUse]
    owner: FunctionInfo


@dataclass
class _Escape:
    """A closure capturing shard-owned state, crossing the Pipe."""

    node: ast.AST
    carrier: str
    free_name: str
    taint: RegionTaint
    owner: FunctionInfo


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on py>=3.9
        return "<expr>"


def _subscripted_map(expr: ast.expr
                     ) -> Tuple[Optional[str], Optional[ast.expr]]:
    """``(map_name, region_key)`` for ``map[key]`` / ``map[key][i]``."""
    key = None
    while isinstance(expr, ast.Subscript):
        key = expr.slice
        expr = expr.value
    if key is None:
        return None, None
    if isinstance(expr, ast.Attribute):
        name: Optional[str] = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return None, None
    if name is not None and REGION_MAPS.search(name):
        return name, key
    return None, None


def _is_self_region(expr: ast.expr) -> bool:
    return (isinstance(expr, ast.Attribute) and expr.attr == "region"
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self")


def _collect_locals(fnode: ast.AST) -> Set[str]:
    """Names bound inside ``fnode``, not descending into nested defs."""
    names: Set[str] = set()
    stack: List[ast.AST] = list(ast.iter_child_nodes(fnode))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        stack.extend(ast.iter_child_nodes(node))
    return names


def _free_names(fnode: ast.AST) -> Set[str]:
    """Names a nested def/lambda reads from its enclosing scope."""
    if isinstance(fnode, ast.Lambda):
        bound = {a.arg for a in fnode.args.args}
        bound |= {a.arg for a in getattr(fnode.args, "posonlyargs", [])}
        bound |= {a.arg for a in fnode.args.kwonlyargs}
        body: Sequence[ast.AST] = [fnode.body]
    elif isinstance(fnode, (ast.FunctionDef, ast.AsyncFunctionDef)):
        bound = set(_collect_locals(fnode))
        args = fnode.args
        bound |= {a.arg for a in args.args}
        bound |= {a.arg for a in getattr(args, "posonlyargs", [])}
        bound |= {a.arg for a in args.kwonlyargs}
        body = fnode.body
    else:
        return set()
    free: Set[str] = set()
    for part in body:
        for node in ast.walk(part):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                free |= _free_names(node)
            elif (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)):
                free.add(node.id)
    return free - bound


class _FunctionWalk:
    """One linear forward pass over one function's body.

    Nested ``def``s are walked immediately with a copy of the current
    environment (so captured taints are visible), registering their own
    events under their own :class:`FunctionInfo`.
    """

    def __init__(self, analysis: "FlowAnalysis", info: FunctionInfo,
                 walks: Dict[str, "_FunctionWalk"],
                 env: Optional[Dict[str, Taint]] = None,
                 owned: Optional[Set[str]] = None) -> None:
        self.analysis = analysis
        self.info = info
        self.ctx = info.ctx
        self.walks = walks
        self.env: Dict[str, Taint] = dict(env) if env else {}
        self.owned: Set[str] = set(owned) if owned else set()
        self.lambdas: Dict[str, ast.Lambda] = {}
        self.locals = _collect_locals(info.node)
        self.uses: List[_Use] = []
        self.calls: List[_CallUse] = []
        self.escapes: List[_Escape] = []
        self.returns: Optional[Tuple[str, KeyRef]] = None
        for i, p in enumerate(info.params):
            self.env[p] = ParamValue(info.qualname, i)
            self.owned.discard(p)

    def run(self) -> None:
        self._stmts(self.info.node.body)
        self.walks[self.info.qualname] = self

    # -- statements ------------------------------------------------------
    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child = self.analysis.index.info_for_node(stmt)
            if child is not None:
                _FunctionWalk(self.analysis, child, self.walks,
                              env=self.env, owned=self.owned).run()
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            self._mutation_target(stmt.target, "augmented assignment")
            if isinstance(stmt.target, ast.Name):
                self.env.pop(stmt.target.id, None)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._mutation_target(target, "del")
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
                taint = self._taint_of(stmt.value)
                if isinstance(taint, RegionTaint) and self.returns is None:
                    self.returns = (taint.map_name, taint.key)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
            self._stmts(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        self._expr(value)
        taint = self._taint_of(value)
        for target in targets:
            self._bind(target, value, taint)

    def _bind(self, target: ast.expr, value: Optional[ast.expr],
              taint: Optional[Taint]) -> None:
        if isinstance(target, ast.Name):
            if value is not None and _is_self_region(value):
                self.owned.add(target.id)
            else:
                self.owned.discard(target.id)
            if isinstance(value, ast.Lambda):
                self.lambdas[target.id] = value
            else:
                self.lambdas.pop(target.id, None)
            if taint is not None:
                self.env[target.id] = taint
            else:
                self.env.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if (isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == len(target.elts)):
                for t, v in zip(target.elts, value.elts):
                    self._bind(t, v, self._taint_of(v))
            else:
                for t in target.elts:
                    self._bind(t, None, None)
            return
        # Attribute / Subscript targets: a *store* through a tainted
        # base or into a region map is a mutation.
        self._mutation_target(target, "assignment")

    def _mutation_target(self, target: ast.expr, how: str) -> None:
        if isinstance(target, ast.Attribute):
            taint = self._taint_of(target.value)
            if taint is not None:
                self.uses.append(_Use(
                    target, taint, True,
                    f"store to attribute {target.attr!r} ({how})",
                    self.info))
            return
        if isinstance(target, ast.Subscript):
            map_name, key = _subscripted_map(target)
            if map_name is not None and key is not None:
                kref, desc = self._classify_key(key)
                self.uses.append(_Use(
                    target,
                    RegionTaint(map_name, kref, desc), True,
                    f"subscript store ({how})", self.info))
                return
            base = self._taint_of(target.value)
            if base is not None:
                self.uses.append(_Use(
                    target, base, True, f"subscript store ({how})",
                    self.info))

    def _for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        self._expr(stmt.iter)
        self._bind_iteration(stmt.target, stmt.iter)
        self._stmts(stmt.body)
        self._stmts(stmt.orelse)

    def _bind_iteration(self, target: ast.expr, it: ast.expr) -> None:
        if self._bind_loop_target(target, it):
            return
        # Iterating a tainted collection (the workers of a foreign
        # region, say) yields tainted elements.
        taint = self._taint_of(it)
        if isinstance(taint, RegionTaint) and isinstance(target, ast.Name):
            self.owned.discard(target.id)
            self.env[target.id] = taint
        else:
            self._bind(target, None, None)

    def _bind_loop_target(self, target: ast.expr,
                          it: ast.expr) -> bool:
        """Bind loop vars for owned-iteration idioms; True if handled."""
        expr = it
        while (isinstance(expr, ast.Call) and expr.args
               and isinstance(expr.func, ast.Name)
               and expr.func.id in {"sorted", "list", "tuple", "reversed"}):
            expr = expr.args[0]
        method = None
        if (isinstance(expr, ast.Call) and isinstance(expr.func,
                                                      ast.Attribute)
                and expr.func.attr in {"keys", "items", "values"}):
            method = expr.func.attr
            expr = expr.func.value
        name = (expr.attr if isinstance(expr, ast.Attribute)
                else expr.id if isinstance(expr, ast.Name) else None)
        if name is None:
            return False
        if name in _OWNED_ITERS and method in (None, "keys"):
            if isinstance(target, ast.Name):
                self.owned.add(target.id)
                self.env.pop(target.id, None)
                return True
            return False
        if not REGION_MAPS.search(name):
            return False
        # Iterating a region map's own keys/items/values touches only
        # entries this platform actually holds — the local surface.
        owned_taint = RegionTaint(name, OWNED, "own iteration")
        if method in (None, "keys") and isinstance(target, ast.Name):
            self.owned.add(target.id)
            self.env.pop(target.id, None)
            return True
        if (method == "items" and isinstance(target, ast.Tuple)
                and len(target.elts) == 2
                and all(isinstance(e, ast.Name) for e in target.elts)):
            k, v = target.elts
            self.owned.add(k.id)  # type: ignore[attr-defined]
            self.env.pop(k.id, None)  # type: ignore[attr-defined]
            self.env[v.id] = owned_taint  # type: ignore[attr-defined]
            return True
        if method == "values" and isinstance(target, ast.Name):
            self.env[target.id] = owned_taint
            self.owned.discard(target.id)
            return True
        return False

    # -- expressions -----------------------------------------------------
    def _expr(self, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Lambda):
            sub = dict(self.env)
            for a in expr.args.args:
                sub.pop(a.arg, None)
            saved, self.env = self.env, sub
            try:
                self._expr(expr.body)
            finally:
                self.env = saved
            return
        if isinstance(expr, ast.Attribute):
            self._attribute(expr)
            return
        if isinstance(expr, ast.Call):
            self._call(expr)
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            saved_env, saved_owned = dict(self.env), set(self.owned)
            try:
                for gen in expr.generators:
                    self._expr(gen.iter)
                    self._bind_iteration(gen.target, gen.iter)
                    for cond in gen.ifs:
                        self._expr(cond)
                if isinstance(expr, ast.DictComp):
                    self._expr(expr.key)
                    self._expr(expr.value)
                else:
                    self._expr(expr.elt)
            finally:
                self.env, self.owned = saved_env, saved_owned
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _attribute(self, node: ast.Attribute) -> None:
        # Direct ``map[key].attr`` is SL009's finding — never ours.
        map_name, _ = _subscripted_map(node.value)
        if map_name is not None:
            self._expr(node.value)
            return
        taint = self._taint_of(node.value)
        self._expr(node.value)
        if taint is None or node.attr in HANDLE_METHODS:
            return
        parent = self.ctx.parent(node)
        if isinstance(parent, ast.Call) and parent.func is node:
            mutating = node.attr in MUTATING_METHODS
            what = f"call of .{node.attr}()"
        else:
            mutating = False
            what = f"read of attribute {node.attr!r}"
        self.uses.append(_Use(node, taint, mutating, what, self.info))

    def _call(self, node: ast.Call) -> None:
        self._expr(node.func)
        for arg in node.args:
            self._expr(arg)
        for kw in node.keywords:
            self._expr(kw.value)
        self._check_crossing(node)
        callee = self.analysis.index.resolve_call(self.info, node)
        if callee is None:
            return
        offset = 1 if callee.class_name is not None else 0
        args: List[_ArgUse] = []
        for pos, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            args.append(self._arg_use(pos + offset, arg))
        for kw in node.keywords:
            if kw.arg is None:
                continue
            idx = callee.param_index(kw.arg)
            if idx is not None:
                args.append(self._arg_use(idx, kw.value))
        self.calls.append(_CallUse(node, callee, args, self.info))

    def _arg_use(self, param_index: int, arg: ast.expr) -> _ArgUse:
        taint = self._taint_of(arg)
        key_class: Optional[KeyRef] = None
        desc = ""
        if isinstance(arg, (ast.Name, ast.Attribute, ast.Subscript)) or (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)):
            key_class, desc = self._classify_key(arg)
        return _ArgUse(param_index, taint, key_class, desc)

    def _check_crossing(self, node: ast.Call) -> None:
        fn = node.func
        carrier = None
        if isinstance(fn, ast.Attribute) and fn.attr in CROSSING_ATTRS:
            carrier = fn.attr
        elif isinstance(fn, ast.Name) and fn.id in CROSSING_NAMES:
            carrier = fn.id
        elif (isinstance(fn, ast.Attribute)
              and fn.attr in CROSSING_NAMES):
            carrier = fn.attr
        if carrier is None:
            return
        payloads = list(node.args) + [kw.value for kw in node.keywords]
        for arg in payloads:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    self._escape_from(node, carrier, sub)
                elif isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Load):
                    if sub.id in self.lambdas:
                        self._escape_from(node, carrier,
                                          self.lambdas[sub.id])
                    else:
                        nested = self._nested_def(sub.id)
                        if nested is not None:
                            self._escape_from(node, carrier, nested.node)

    def _nested_def(self, name: str) -> Optional[FunctionInfo]:
        cur: Optional[FunctionInfo] = self.info
        while cur is not None:
            if name in cur.nested:
                return cur.nested[name]
            cur = cur.parent
        return None

    def _escape_from(self, node: ast.Call, carrier: str,
                     fnode: ast.AST) -> None:
        for free in sorted(_free_names(fnode)):
            taint = self.env.get(free)
            if isinstance(taint, RegionTaint):
                self.escapes.append(_Escape(
                    node, carrier, free, taint, self.info))

    # -- taint & key resolution ------------------------------------------
    def _taint_of(self, expr: ast.expr) -> Optional[Taint]:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Subscript):
            map_name, key = _subscripted_map(expr)
            if map_name is not None and key is not None:
                kref, desc = self._classify_key(key)
                return RegionTaint(map_name, kref, desc)
            # Element of a tainted collection (a WorkerArrays row, a
            # worker out of ``workers_by_region[r]``) stays tainted.
            return self._taint_of(expr.value)
        if isinstance(expr, ast.Call):
            callee = self.analysis.index.resolve_call(self.info, expr)
            if callee is None:
                return None
            summary = self.analysis.summaries.get(callee.qualname)
            if summary is None or summary.returns is None:
                return None
            map_name, key = summary.returns
            if isinstance(key, tuple) and key[0] == "param":
                kref, desc = self._key_through_call(expr, callee, key[2])
                return RegionTaint(map_name, kref, desc)
            return RegionTaint(map_name, key,
                               "self.region" if key == OWNED else "")
        if isinstance(expr, ast.Await):
            return self._taint_of(expr.value)
        return None

    def _key_through_call(self, call: ast.Call, callee: FunctionInfo,
                          param_index: int) -> Tuple[KeyRef, str]:
        """Resolve a callee's param-keyed return at this call site."""
        offset = 1 if callee.class_name is not None else 0
        pos = param_index - offset
        if 0 <= pos < len(call.args):
            arg = call.args[pos]
            if not isinstance(arg, ast.Starred):
                return self._classify_key(arg)
        if 0 <= param_index < len(callee.params):
            wanted = callee.params[param_index]
            for kw in call.keywords:
                if kw.arg == wanted:
                    return self._classify_key(kw.value)
        return NONOWNED, "<unresolved key>"

    def _classify_key(self, expr: ast.expr) -> Tuple[KeyRef, str]:
        if _is_self_region(expr):
            return OWNED, "self.region"
        if isinstance(expr, ast.Name):
            if expr.id in self.owned:
                return OWNED, expr.id
            taint = self.env.get(expr.id)
            if isinstance(taint, ParamValue):
                return ("param", taint.qual, taint.index), expr.id
            return NONOWNED, expr.id
        return NONOWNED, _unparse(expr)


class FlowAnalysis:
    """Whole-project taint analysis; built once per lint run."""

    def __init__(self, project: Project) -> None:
        self.index: ProjectIndex = project_index(project)
        self.summaries: Dict[str, Summary] = {
            q: Summary() for q in self.index.functions}
        top = [info for info in self.index.all_functions()
               if info.parent is None]
        walks: Dict[str, _FunctionWalk] = {}
        for _ in range(_MAX_PASSES):
            walks = {}
            for info in top:
                _FunctionWalk(self, info, walks).run()
            new = self._derive_summaries(walks)
            if new == self.summaries:
                break
            self.summaries = new
        self.walks = walks

    # -- summaries -------------------------------------------------------
    def _derive_summaries(self, walks: Dict[str, _FunctionWalk]
                          ) -> Dict[str, Summary]:
        out: Dict[str, Summary] = {q: Summary() for q in
                                   self.index.functions}

        def touch(taint: Taint, mutating: bool) -> None:
            if isinstance(taint, ParamValue):
                s = out.get(taint.qual)
                if s is not None:
                    (s.mut if mutating else s.deep).add(taint.index)
            elif isinstance(taint, RegionTaint):
                key = taint.key
                if isinstance(key, tuple) and key[0] == "param":
                    s = out.get(key[1])
                    if s is not None:
                        (s.key_mut if mutating else
                         s.key_deep).add(key[2])

        for qual in sorted(walks):
            walk = walks[qual]
            for use in walk.uses:
                touch(use.taint, use.mutating)
            for call in walk.calls:
                callee = self.summaries.get(call.callee.qualname)
                if callee is None:
                    continue
                for arg in call.args:
                    j = arg.param_index
                    if arg.value_taint is not None:
                        if j in callee.deep:
                            touch(arg.value_taint, False)
                        if j in callee.mut:
                            touch(arg.value_taint, True)
                    kc = arg.key_class
                    if isinstance(kc, tuple) and kc[0] == "param":
                        s = out.get(kc[1])
                        if s is not None:
                            if j in callee.key_deep:
                                s.key_deep.add(kc[2])
                            if j in callee.key_mut:
                                s.key_mut.add(kc[2])
            if walk.returns is not None:
                out[qual].returns = walk.returns
        return out

    # -- findings --------------------------------------------------------
    def findings(self) -> Iterator[Tuple[str, LintContext, ast.AST, str]]:
        """``(rule_id, ctx, node, message)`` for every flow finding."""
        seen: Set[Tuple[str, str, int, int, str]] = set()

        def emit(rule_id: str, ctx: LintContext, node: ast.AST,
                 message: str
                 ) -> Iterator[Tuple[str, LintContext, ast.AST, str]]:
            key = (rule_id, ctx.path, getattr(node, "lineno", 1),
                   getattr(node, "col_offset", 0), message)
            if key not in seen:
                seen.add(key)
                yield rule_id, ctx, node, message

        for qual in sorted(self.walks):
            walk = self.walks[qual]
            ctx = walk.ctx
            exempt = EXEMPT.match(walk.info.name) is not None
            if not exempt:
                for use in walk.uses:
                    t = use.taint
                    if not (isinstance(t, RegionTaint)
                            and t.key == NONOWNED):
                        continue
                    rid = "SL012" if use.mutating else "SL010"
                    yield from emit(
                        rid, ctx, use.node,
                        f"{use.what} on a value from "
                        f"{t.map_name!r}[{t.key_desc}] — a non-owning "
                        "region key; this state belongs to another "
                        "shard")
                for call in walk.calls:
                    yield from self._call_findings(emit, ctx, call)
            for esc in walk.escapes:
                yield from emit(
                    "SL011", ctx, esc.node,
                    f"closure captures {esc.free_name!r} (shard-owned: "
                    f"from {esc.taint.map_name!r}[{esc.taint.key_desc}])"
                    f" and crosses the shard boundary via "
                    f"{esc.carrier}()")

    def _call_findings(self, emit, ctx: LintContext, call: _CallUse
                       ) -> Iterator[Tuple[str, LintContext, ast.AST,
                                           str]]:
        callee = self.summaries.get(call.callee.qualname)
        if callee is None:
            return
        name = call.callee.name
        for arg in call.args:
            j = arg.param_index
            t = arg.value_taint
            if (isinstance(t, RegionTaint) and t.key == NONOWNED):
                if j in callee.mut:
                    yield from emit(
                        "SL012", ctx, call.node,
                        f"{name}() mutates its argument — here a value "
                        f"from {t.map_name!r}[{t.key_desc}], keyed by a "
                        "non-owning region")
                elif j in callee.deep:
                    yield from emit(
                        "SL010", ctx, call.node,
                        f"{name}() reads into its argument — here a "
                        f"value from {t.map_name!r}[{t.key_desc}], "
                        "keyed by a non-owning region")
            if arg.key_class == NONOWNED:
                if j in callee.key_mut:
                    yield from emit(
                        "SL012", ctx, call.node,
                        f"{name}() mutates region-keyed state selected "
                        f"by this argument ({arg.key_desc}) — a "
                        "non-owning region key")
                elif j in callee.key_deep:
                    yield from emit(
                        "SL010", ctx, call.node,
                        f"{name}() accesses region-keyed state "
                        f"selected by this argument ({arg.key_desc}) — "
                        "a non-owning region key")


def flow_analysis(project: Project) -> FlowAnalysis:
    """The (cached) :class:`FlowAnalysis` of ``project``."""
    analysis = project.cache.get("flow.analysis")
    if analysis is None:
        analysis = FlowAnalysis(project)
        project.cache["flow.analysis"] = analysis
    return analysis  # type: ignore[return-value]
