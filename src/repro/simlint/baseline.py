"""Findings baselines: adopt a rule without blocking on legacy findings.

A baseline is a JSON snapshot of accepted findings.  Linting with
``--baseline`` mutes any finding that matches a baselined fingerprint,
so a new (or newly error-severity) rule can land in CI immediately:
existing violations are frozen in the committed baseline and every *new*
violation still fails the build.  Shrinking the baseline is the ratchet.

Version-2 fingerprints are ``(rule, normalized path, normalized source
text)`` — deliberately not line *numbers*, so unrelated edits above a
finding do not invalidate the baseline.  The path is normalized to start
at its last ``repro``/``tests``/``benchmarks`` segment (stable across
checkouts and ``src/`` vs installed layouts) and the text is whitespace
collapsed.  Identical lines in one file are matched up to the baselined
count.  Version-1 baselines (keyed on the dotted module name instead of
the path) still load; ``repro lint --migrate-baseline`` rewrites them.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .engine import Finding

_Fingerprint = Tuple[str, str, str]

#: Path segments a v2 fingerprint anchors on (last occurrence wins).
_PATH_ANCHORS = frozenset({"repro", "tests", "benchmarks"})

CURRENT_VERSION = 2


def _normalize_path(path: str) -> str:
    """Tail of ``path`` from its last anchor segment, ``/``-separated.

    ``src/repro/sim/kernel.py`` and an installed
    ``.../site-packages/repro/sim/kernel.py`` both normalize to
    ``repro/sim/kernel.py``, so baselines survive layout moves.
    """
    parts = Path(path).as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] in _PATH_ANCHORS:
            return "/".join(parts[i:])
    return "/".join(parts)


def _normalize_text(line: str) -> str:
    return " ".join(line.split())


def _fingerprint_v1(finding: Finding, source_line: str) -> _Fingerprint:
    return (finding.rule_id, finding.module, source_line.strip())


def _fingerprint_v2(finding: Finding, source_line: str) -> _Fingerprint:
    return (finding.rule_id, _normalize_path(finding.path),
            _normalize_text(source_line))


def _finding_line(finding: Finding) -> str:
    try:
        lines = Path(finding.path).read_text(encoding="utf-8").splitlines()
        return lines[finding.line - 1]
    except (OSError, IndexError):
        return ""


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(self, counts: Dict[_Fingerprint, int],
                 version: int = CURRENT_VERSION) -> None:
        self._counts = Counter(counts)
        self.version = version

    def __len__(self) -> int:
        return sum(self._counts.values())

    def _key(self, finding: Finding) -> _Fingerprint:
        line = _finding_line(finding)
        if self.version == 1:
            return _fingerprint_v1(finding, line)
        return _fingerprint_v2(finding, line)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Snapshot ``findings`` at the current fingerprint version."""
        counts: Counter = Counter()
        for f in findings:
            counts[_fingerprint_v2(f, _finding_line(f))] += 1
        return cls(dict(counts))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        version = doc.get("version")
        if version not in (1, CURRENT_VERSION):
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}")
        location_key = "module" if version == 1 else "path"
        counts: Dict[_Fingerprint, int] = {}
        for entry in doc.get("findings", []):
            key = (entry["rule"], entry[location_key], entry["text"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts, version=version)

    def save(self, path: Union[str, Path]) -> None:
        location_key = "module" if self.version == 1 else "path"
        entries = [{"rule": rule, location_key: location, "text": text,
                    "count": count}
                   for (rule, location, text), count
                   in sorted(self._counts.items())]
        doc = {"version": self.version, "findings": entries}
        Path(path).write_text(json.dumps(doc, indent=1) + "\n",
                              encoding="utf-8")

    def filter(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings not covered by the baseline (order preserved)."""
        budget = Counter(self._counts)
        fresh: List[Finding] = []
        for f in findings:
            key = self._key(f)
            if budget[key] > 0:
                budget[key] -= 1
            else:
                fresh.append(f)
        return fresh


def apply_baseline(findings: Sequence[Finding],
                   baseline_path: Union[str, Path]) -> List[Finding]:
    """Load ``baseline_path`` and drop the findings it accepts."""
    return Baseline.load(baseline_path).filter(findings)
