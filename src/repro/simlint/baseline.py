"""Findings baselines: adopt a rule without blocking on legacy findings.

A baseline is a JSON snapshot of accepted findings.  Linting with
``--baseline`` mutes any finding that matches a baselined fingerprint,
so a new (or newly error-severity) rule can land in CI immediately:
existing violations are frozen in the committed baseline and every *new*
violation still fails the build.  Shrinking the baseline is the ratchet.

Fingerprints are ``(rule, module, stripped source line)`` — deliberately
not line *numbers*, so unrelated edits above a finding do not invalidate
the baseline.  Identical lines in one module are matched up to the
baselined count.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .engine import Finding

_Fingerprint = Tuple[str, str, str]


def _fingerprint(finding: Finding,
                 source_line: str) -> _Fingerprint:
    return (finding.rule_id, finding.module, source_line.strip())


def _finding_line(finding: Finding) -> str:
    try:
        lines = Path(finding.path).read_text(encoding="utf-8").splitlines()
        return lines[finding.line - 1]
    except (OSError, IndexError):
        return ""


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(self, counts: Dict[_Fingerprint, int]) -> None:
        self._counts = Counter(counts)

    def __len__(self) -> int:
        return sum(self._counts.values())

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts: Counter = Counter()
        for f in findings:
            counts[_fingerprint(f, _finding_line(f))] += 1
        return cls(dict(counts))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        if doc.get("version") != 1:
            raise ValueError(
                f"unsupported baseline version {doc.get('version')!r} "
                f"in {path}")
        counts: Dict[_Fingerprint, int] = {}
        for entry in doc.get("findings", []):
            key = (entry["rule"], entry["module"], entry["text"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: Union[str, Path]) -> None:
        entries = [{"rule": rule, "module": module, "text": text,
                    "count": count}
                   for (rule, module, text), count
                   in sorted(self._counts.items())]
        doc = {"version": 1, "findings": entries}
        Path(path).write_text(json.dumps(doc, indent=1) + "\n",
                              encoding="utf-8")

    def filter(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings not covered by the baseline (order preserved)."""
        budget = Counter(self._counts)
        fresh: List[Finding] = []
        for f in findings:
            key = _fingerprint(f, _finding_line(f))
            if budget[key] > 0:
                budget[key] -= 1
            else:
                fresh.append(f)
        return fresh


def apply_baseline(findings: Sequence[Finding],
                   baseline_path: Union[str, Path]) -> List[Finding]:
    """Load ``baseline_path`` and drop the findings it accepts."""
    return Baseline.load(baseline_path).filter(findings)
