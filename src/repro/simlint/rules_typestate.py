"""The lifecycle (typestate) rules, backed by ``simlint.typestate``.

All three rules share one
:class:`~repro.simlint.typestate.TypestateAnalysis` per lint run
(cached on the :class:`~repro.simlint.engine.Project`), so the call
graph, the per-function abstract interpretation, and the summary
fixpoint are computed once however many rules are selected.
"""

from __future__ import annotations

from typing import Iterator

from .engine import Finding, Project, ProjectRule, Severity
from .typestate import typestate_analysis


class _TypestateRule(ProjectRule):
    """Shared dispatch: pick this rule's findings out of the analysis."""

    packages = frozenset({"core", "sim", "parsim", "metrics", "cluster",
                          "downstream", "triggers", "workloads",
                          "baselines", "sweep"})

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = typestate_analysis(project)
        for rule_id, ctx, node, message in analysis.findings():
            if rule_id == self.id:
                yield ctx.finding(self, node, message)


class EventHandleLifecycle(_TypestateRule):
    """SL013 — event-handle lifecycle violations (typestate).

    The semantic superset of SL006's pattern matches: where SL006 flags
    a literal ``handle.cancelled = False`` store or a negative delay
    written in one expression, SL013 follows the handle — a second
    ``cancel()`` reached through an alias or a helper, a *non*-literal
    store to ``.cancelled``, rebinding a name whose current handle is
    still armed (double-arm), and an armed handle bound to a local that
    neither escapes nor is cancelled on some path.  Unbound
    ``sim.call_after(...)`` statements are deliberately legal — that is
    the normal fire-and-forget idiom.
    """

    id = "SL013"
    severity = Severity.ERROR
    title = "event-handle lifecycle violation (FSM: armed -> cancelled)"
    fix_hint = ("treat handles as one-shot: cancel at most once, never "
                "re-arm via .cancelled, and either store an armed "
                "handle where it can be cancelled or drop the binding "
                "entirely (fire-and-forget)")


class LeaseProtocolViolation(_TypestateRule):
    """SL014 — DurableQ lease-protocol violations (typestate).

    ``poll()`` leases calls under at-least-once delivery; each leased
    call must settle exactly once (``polled -> acked | nacked``) and
    ``extend_lease`` is legal only while still ``polled``.  The rule
    tracks poll results through iteration, aliases, branches, and
    helper calls (via summaries), and reports double-ack, ack+nack on
    the same call, double-nack, extend-after-settle, a dropped poll
    result, and a leased call that can reach the end of a function
    unsettled and unowned on some path.
    """

    id = "SL014"
    severity = Severity.ERROR
    title = "DurableQ lease-protocol violation (settle exactly once)"
    fix_hint = ("settle every leased call exactly once on every path "
                "(ack on success, nack on failure, try/finally if "
                "needed); extend_lease only before settling; hand "
                "unsettled calls to an owner (buffer/inflight map) "
                "before returning")


class SnapshotMergeDiscipline(_TypestateRule):
    """SL015 — metrics snapshot/merge discipline (typestate).

    ``snapshot()`` captures a registry at a point in time; the capture
    pairs with at most one ``merge``/``from_snapshot``.  The rule
    reports merging the same snapshot twice (every metric would
    double-count), mutating the source registry between ``snapshot()``
    and the snapshot's merge (the capture goes stale and the mutation
    is lost to whoever merges it), and a registry merged into itself.
    """

    id = "SL015"
    severity = Severity.ERROR
    title = "snapshot/merge discipline violation (capture pairs once)"
    fix_hint = ("merge each snapshot exactly once; finish mutating a "
                "registry before capturing it (or re-snapshot after "
                "the mutation); never reg.merge(reg)")


TYPESTATE_RULES = (
    EventHandleLifecycle(),
    LeaseProtocolViolation(),
    SnapshotMergeDiscipline(),
)
