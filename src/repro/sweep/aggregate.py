"""Merge per-run results into fleet-level statistics.

Two complementary aggregations:

* :func:`merge_metrics` folds the per-process ``MetricsRegistry``
  snapshots into one registry (exact for counters/distributions,
  weighted-marker for P² sketches) — "what did the whole sweep's fleet
  look like as one population".
* :func:`aggregate_summaries` treats each run's headline scalars as an
  independent observation per variant label and reports mean ± 95%
  confidence interval — "how seed-sensitive is each claim".
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..metrics import MetricsRegistry
from .spec import RunResult

#: Two-sided 97.5% Student-t critical values by degrees of freedom;
#: beyond the table the normal 1.96 is close enough.
_T_975 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
          7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
          20: 2.086, 25: 2.060, 30: 2.042}


def t_critical(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df in _T_975:
        return _T_975[df]
    for known in sorted(_T_975):
        if df < known:
            return _T_975[known]
    return 1.96


def confidence_interval(values: Sequence[float]) -> Dict[str, float]:
    """Mean and 95% CI half-width of an independent sample."""
    n = len(values)
    if n == 0:
        raise ValueError("no values")
    mean = sum(values) / n
    if n == 1:
        return {"n": 1, "mean": mean, "std": 0.0, "ci95": float("nan")}
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    return {"n": n, "mean": mean, "std": std,
            "ci95": t_critical(n - 1) * std / math.sqrt(n)}


def merge_metrics(results: Iterable[RunResult],
                  label: Optional[str] = None) -> MetricsRegistry:
    """Fold the metric snapshots of (successful) runs into one registry."""
    merged = MetricsRegistry()
    for res in results:
        if not res.ok or not res.metrics:
            continue
        if label is not None and res.label != label:
            continue
        merged.merge(res.metrics)
    return merged


def aggregate_summaries(results: Sequence[RunResult]) -> Dict[str, dict]:
    """Per-variant mean ± CI for every headline summary statistic.

    Returns ``{label: {stat: {n, mean, std, ci95}}}`` over successful
    runs, preserving first-appearance label order.
    """
    by_label: Dict[str, List[RunResult]] = {}
    for res in results:
        if res.ok:
            by_label.setdefault(res.label, []).append(res)
    out: Dict[str, dict] = {}
    for label, group in by_label.items():
        stats: Dict[str, dict] = {}
        keys = sorted({k for r in group for k in r.summary})
        for key in keys:
            values = [r.summary[key] for r in group if key in r.summary]
            if values:
                stats[key] = confidence_interval(values)
        out[label] = stats
    return out


def sweep_report(results: Sequence[RunResult],
                 include_metrics: bool = False) -> Dict[str, Any]:
    """The JSON document the CLI and benches emit for a finished sweep."""
    aggregates = aggregate_summaries(results)
    merged_quantiles: Dict[str, dict] = {}
    for label in aggregates:
        merged = merge_metrics(results, label=label)
        if merged.has_distribution("latency.completion"):
            lat = merged.distribution("latency.completion")
            if len(lat):
                merged_quantiles[label] = {
                    "count": len(lat),
                    "p50_s": lat.percentile(50),
                    "p95_s": lat.percentile(95),
                    "p99_s": lat.percentile(99),
                }
    return {
        "n_runs": len(results),
        "n_failed": sum(1 for r in results if not r.ok),
        "runs": [r.to_json(include_metrics=include_metrics)
                 for r in results],
        "aggregates": aggregates,
        "merged_latency": merged_quantiles,
    }
