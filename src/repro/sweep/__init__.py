"""Parallel sweep engine: multiprocess fan-out over seeds and ablations.

The paper's claims are fleet-shape claims; checking them properly means
running the same scenario across many seeds and configuration variants
and reporting confidence intervals, which is only practical when a grid
of simulations is cheap.  This package fans a grid of
``(scenario, seed, overrides)`` specs out across CPU cores and merges
the per-process results deterministically::

    from repro.sweep import build_grid, run_sweep, sweep_report

    specs = build_grid(n_reps=8, master_seed=7,
                       variants=[("baseline", {}),
                                 ("no time-shifting",
                                  {"time_shifting": False})],
                       horizon_s=2 * 3600.0, total_rate=4.0)
    results = run_sweep(specs, workers=4)
    report = sweep_report(results)

Per-run trace digests are bit-identical whatever ``workers`` is, so
parallelism is a pure wall-clock optimization, never a behavior change.
"""

from .aggregate import (
    aggregate_summaries,
    confidence_interval,
    merge_metrics,
    sweep_report,
)
from .runner import execute_spec, run_sweep
from .spec import ABLATIONS, RunResult, RunSpec, build_grid, seed_for_rep

__all__ = [
    "ABLATIONS",
    "RunResult",
    "RunSpec",
    "aggregate_summaries",
    "build_grid",
    "confidence_interval",
    "execute_spec",
    "merge_metrics",
    "run_sweep",
    "seed_for_rep",
    "sweep_report",
]
