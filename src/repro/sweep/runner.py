"""Multiprocess fan-out: execute a grid of RunSpecs across CPU cores.

Design constraints, in order:

* **Determinism** — a run's result depends only on its spec, never on
  which process executed it or in what order.  Results are returned
  sorted by spec index, and per-run trace digests are bit-identical
  between ``workers=1`` and ``workers=N``.
* **Spawn safety** — the worker entrypoint is a module-level function
  taking one picklable argument, so it works under the ``spawn`` start
  method (the only one available everywhere, and the one that catches
  pickling bugs early).  ``fork`` is still selectable for speed on
  POSIX via ``mp_context="fork"``.
* **Graceful degradation** — an exception inside a run is caught in the
  worker and reported as a failed :class:`RunResult`; a worker process
  dying outright is converted to failed results for the specs that were
  in flight.  The sweep always returns one result per spec.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import List, Optional, Sequence

from ..scenarios import SCENARIOS, summarize_run
from .spec import RunResult, RunSpec


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one simulation from scratch and return its compact result.

    This is the worker entrypoint; it must stay importable as
    ``repro.sweep.runner.execute_spec`` and must only raise for
    interpreter-level failures — scenario errors become ``ok=False``
    results so one bad grid point cannot kill a sweep.
    """
    t0 = time.perf_counter()
    try:
        build = SCENARIOS.get(spec.scenario)
        if build is None:
            raise KeyError(
                f"unknown scenario {spec.scenario!r} "
                f"(have {sorted(SCENARIOS)})")
        run = build(**spec.scenario_kwargs())
        platform = run.platform
        return RunResult(
            index=spec.index, seed=spec.seed, label=spec.label, ok=True,
            wall_s=time.perf_counter() - t0,
            events_executed=run.sim.events_executed,
            n_traces=len(platform.traces),
            trace_digest=platform.traces.digest(),
            summary=summarize_run(run),
            metrics=platform.metrics.snapshot())
    except Exception:
        return RunResult(
            index=spec.index, seed=spec.seed, label=spec.label, ok=False,
            wall_s=time.perf_counter() - t0,
            error=traceback.format_exc(limit=8))


def run_sweep(specs: Sequence[RunSpec], workers: int = 1,
              mp_context: str = "spawn",
              chunksize: Optional[int] = None) -> List[RunResult]:
    """Execute every spec and return results ordered by spec index.

    ``workers <= 1`` runs serially in-process (no pool, no pickling) —
    the determinism baseline.  Otherwise a ``spawn`` pool executes specs
    with chunked dispatch; ``chunksize`` defaults to 1 so long runs
    load-balance instead of queueing behind one worker.
    """
    specs = list(specs)
    if len({s.index for s in specs}) != len(specs):
        raise ValueError("spec indices must be unique")
    if workers <= 1 or len(specs) <= 1:
        results = [execute_spec(spec) for spec in specs]
        return sorted(results, key=lambda r: r.index)

    ctx = multiprocessing.get_context(mp_context)
    workers = min(workers, len(specs))
    results: List[RunResult] = []
    with ctx.Pool(processes=workers) as pool:
        it = pool.imap(execute_spec, specs, chunksize=chunksize or 1)
        for spec in specs:
            try:
                results.append(next(it))
            except StopIteration:  # pool died mid-sweep
                results.append(_worker_loss(spec, "result stream ended early"))
            except Exception as exc:  # crashed worker / unpicklable result
                results.append(_worker_loss(spec, repr(exc)))
    return sorted(results, key=lambda r: r.index)


def _worker_loss(spec: RunSpec, detail: str) -> RunResult:
    return RunResult(index=spec.index, seed=spec.seed, label=spec.label,
                     ok=False, wall_s=0.0,
                     error=f"worker failure: {detail}")
