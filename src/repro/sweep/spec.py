"""Picklable run specifications and results for the sweep engine.

A :class:`RunSpec` is everything a worker process needs to rebuild one
simulation from scratch: scenario name, seed, workload shape, and
parameter overrides.  A :class:`RunResult` is the compact, serializable
product shipped back over the ``multiprocessing`` pipe: trace digest,
headline stats, and a :class:`~repro.metrics.MetricsRegistry` snapshot —
never the simulator or platform objects themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.rng import derive_seed

#: Named §1.2 ablations: CLI flag value -> ``PlatformParams`` overrides.
#: Each switches one technique off against the unablated baseline.
ABLATIONS: Dict[str, Dict[str, Any]] = {
    "time-shifting": {"time_shifting": False},
    "global-dispatch": {"global_dispatch": False},
    "locality-groups": {"locality_groups": False},
    "cooperative-jit": {"cooperative_jit": False},
    "aimd": {"aimd": False},
}


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep grid.  Frozen + tuple-valued → hashable,
    picklable, and safe to ship to a spawn-started worker."""

    index: int
    seed: int
    scenario: str = "dayrun"
    label: str = "baseline"
    horizon_s: float = 6 * 3600.0
    total_rate: float = 8.0
    n_functions: int = 60
    n_regions: int = 6
    #: Kernel event-queue implementation ("heap"/"calendar"); None keeps
    #: the simulator default.  Both backends are bit-identical, so this
    #: is a perf knob, never a variant axis.
    queue_backend: Optional[str] = None
    #: ``PlatformParams`` field overrides as sorted (name, value) pairs
    #: (a dict is unhashable; the tuple keeps RunSpec frozen-friendly).
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def overrides_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)

    def scenario_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the scenario builder."""
        return {
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "total_rate": self.total_rate,
            "n_functions": self.n_functions,
            "n_regions": self.n_regions,
            "queue_backend": self.queue_backend,
            "overrides": self.overrides_dict(),
        }


@dataclass
class RunResult:
    """Outcome of executing one :class:`RunSpec` (possibly a failure)."""

    index: int
    seed: int
    label: str
    ok: bool
    wall_s: float
    error: str = ""
    events_executed: int = 0
    n_traces: int = 0
    trace_digest: str = ""
    summary: Dict[str, float] = field(default_factory=dict)
    #: ``MetricsRegistry.snapshot()`` of the run's platform metrics.
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_json(self, include_metrics: bool = False) -> Dict[str, Any]:
        out = {
            "index": self.index, "seed": self.seed, "label": self.label,
            "ok": self.ok, "wall_s": round(self.wall_s, 3),
            "error": self.error, "events_executed": self.events_executed,
            "n_traces": self.n_traces, "trace_digest": self.trace_digest,
            "summary": self.summary,
        }
        if include_metrics:
            out["metrics"] = self.metrics
        return out


def seed_for_rep(master_seed: int, rep: int) -> int:
    """Per-repetition seed derived from the sweep's master seed.

    The derivation depends only on the repetition index — *not* on the
    variant label — so repetition ``i`` of every ablation variant runs
    the same workload realization and A/B comparisons stay paired.
    """
    return derive_seed(master_seed, f"sweep:rep{rep}")


def build_grid(n_reps: int, master_seed: int = 7,
               variants: Optional[Sequence[Tuple[str, Dict[str, Any]]]] = None,
               scenario: str = "dayrun",
               **scenario_kwargs: Any) -> List[RunSpec]:
    """Expand ``variants × repetitions`` into an ordered list of specs.

    ``variants`` is a sequence of ``(label, overrides)`` pairs; the
    default is a single unablated baseline.  Spec indices enumerate the
    grid in deterministic (variant-major, repetition-minor) order and
    double as the merge ordering key.
    """
    if n_reps <= 0:
        raise ValueError(f"n_reps must be positive, got {n_reps}")
    if variants is None:
        variants = [("baseline", {})]
    specs: List[RunSpec] = []
    for label, overrides in variants:
        for rep in range(n_reps):
            specs.append(RunSpec(
                index=len(specs),
                seed=seed_for_rep(master_seed, rep),
                scenario=scenario,
                label=label,
                overrides=tuple(sorted(overrides.items())),
                **scenario_kwargs))
    return specs
