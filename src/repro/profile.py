"""Deterministic time attribution for simulation runs.

The speed benchmark says *how fast* a run is; this module says *where
the time goes*.  A :class:`ProfileRecorder` replaces the kernel's event
dispatch loop with an instrumented twin that attributes wall time to
``(component, event-type)`` pairs — e.g. ``("Scheduler", "tick")`` or
``("Worker", "execute.<lambda>")`` — tracking both *self* time (spent in
that frame alone) and *cumulative* time (frame plus everything it
called).  A curated set of hot component methods is wrapped for the
duration of a profiled run so the nesting below a top-level event
(scheduler tick → WorkerLB dispatch → Worker admission) is visible, not
just the event totals.

Determinism contract: profiling must never change *what* a run does.
The recorder only reads ``time.perf_counter`` around calls it forwards
unmodified — no RNG draws, no event reordering — so a profiled run's
trace digest is bit-identical to an unprofiled run's.  CI asserts this
on every push (`python -m repro profile --quick --expect-digest …`) and
``tests/test_profile.py`` locks it at unit level.

Wall-clock reads are allowed *here* because this module is harness code
that wraps the simulation from outside; it is deliberately a top-level
module (like ``repro.cli``) so simlint's SL002 wall-clock rule keeps
gating everything that runs *under* the simulated clock.

Usage::

    rec = ProfileRecorder()
    with rec.installed():
        run = build_dayrun(horizon_s=600.0, profiler=rec)
    print(rec.table())
    print(rec.collapsed())   # flamegraph.pl / speedscope folded stacks
"""

from __future__ import annotations

import importlib
import tracemalloc
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

Key = Tuple[str, str]

#: Hot component methods wrapped during a profiled run, as
#: ``(module, class, methods)``.  Curated rather than exhaustive: these
#: are the frames that make an attribution table actionable (the
#: dispatch chain, the write path, the periodic controllers).  Wrapping
#: happens at the *class* level, so it must be installed before the
#: platform is built — components that capture bound methods at init
#: time (``sim.every(..., self.tick)``) bind whatever the class held at
#: that moment.
DEFAULT_TARGETS: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    ("repro.core.scheduler", "Scheduler",
     ("tick", "_poll_durableqs", "_schedule_pass", "_drain_runq",
      "on_call_finished", "_extend_leases")),
    ("repro.core.workerlb", "WorkerLB", ("dispatch",)),
    ("repro.core.worker", "Worker", ("execute", "can_admit", "_complete")),
    ("repro.core.durableq", "DurableQ", ("poll", "enqueue", "ack", "nack")),
    ("repro.core.queuelb", "QueueLB", ("route",)),
    ("repro.core.submitter", "Submitter", ("submit", "_flush")),
    ("repro.core.platform", "XFaaS",
     ("submit", "_on_done", "_invoke_downstream")),
    ("repro.core.rim", "Rim", ("sample",)),
    ("repro.core.congestion", "CongestionController",
     ("adjust", "can_dispatch")),
    ("repro.core.ratelimiter", "CentralRateLimiter", ("try_acquire",)),
    ("repro.workloads.generator", "ArrivalGenerator", ("_tick", "_fire")),
)


def event_key(callback: Callable[..., Any]) -> Key:
    """Derive the ``(component, event-type)`` pair for a callback.

    Bound methods attribute to their class; periodic-task firings
    attribute to the *wrapped* callback (a tick named ``PeriodicTask``
    would hide every controller behind one row); lambdas and closures
    attribute to their defining function via ``__qualname__``
    (``Worker.execute.<locals>.<lambda>`` → ``Worker, execute.<lambda>``).
    """
    target = getattr(callback, "__self__", None)
    if target is not None:
        if (type(target).__name__ == "PeriodicTask"
                and getattr(callback, "__name__", "") == "_fire"):
            inner = getattr(target, "_callback", None)
            if inner is not None and inner is not callback:
                return event_key(inner)
        return (type(target).__name__,
                getattr(callback, "__name__", "callback"))
    qualname = (getattr(callback, "__qualname__", None)
                or getattr(callback, "__name__", None) or "callback")
    parts = [p for p in qualname.split(".") if p != "<locals>"]
    if len(parts) == 1:
        return ("<module>", parts[0])
    return (parts[0], ".".join(parts[1:]))


class ProfileRecorder:
    """Attributes wall time to (component, event-type) frames.

    Frames nest: a wrapped method called from inside a timed event adds
    its elapsed time to the caller's *cumulative* total but is
    subtracted from the caller's *self* total.  Recursive frames add to
    cumulative time once per level (the usual folded-profiler caveat).
    """

    def __init__(self) -> None:
        #: key → [count, self_s, cum_s]
        self._stats: Dict[Key, List[float]] = {}
        #: frame path (outermost first) → accumulated self seconds, the
        #: folded-stack data flamegraph tools consume.
        self._folded: Dict[Tuple[Key, ...], float] = {}
        #: Active frames: [key, child_seconds] (innermost last).
        self._stack: List[List[Any]] = []
        self._installed: List[Tuple[type, str, Any]] = []
        self.events_profiled = 0
        self.total_s = 0.0

    # ------------------------------------------------------------------
    # Frame engine
    # ------------------------------------------------------------------
    def _call(self, key: Key, fn: Callable[..., Any],
              args: Tuple[Any, ...] = (),
              kwargs: Optional[Dict[str, Any]] = None) -> Any:
        stack = self._stack
        frame: List[Any] = [key, 0.0]
        stack.append(frame)
        t0 = perf_counter()
        try:
            if kwargs is None:
                return fn(*args)
            return fn(*args, **kwargs)
        finally:
            dt = perf_counter() - t0
            path = tuple(f[0] for f in stack)
            stack.pop()
            rec = self._stats.get(key)
            if rec is None:
                rec = self._stats[key] = [0, 0.0, 0.0]
            self_s = dt - frame[1]
            rec[0] += 1
            rec[1] += self_s
            rec[2] += dt
            self._folded[path] = self._folded.get(path, 0.0) + self_s
            if stack:
                stack[-1][1] += dt
            else:
                self.total_s += dt

    # ------------------------------------------------------------------
    # Kernel dispatch loops (instrumented twins of Simulator.run_until /
    # Simulator.run; the kernel delegates here when a profiler is set).
    # ------------------------------------------------------------------
    def run_until(self, sim: Any, until: float) -> None:
        sim._stopped = False
        sim._running = True
        queue = sim._queue
        purge_head = queue._purge_head
        pop_head = queue._pop_head
        call = self._call
        executed = 0
        try:
            while not sim._stopped:
                head = purge_head()
                if head is None or head[0] > until:
                    break
                entry = pop_head()
                sim._now = entry[0]
                executed += 1
                cb = entry[3].callback
                call(event_key(cb), cb)
            if sim._now < until:
                sim._now = until
        finally:
            sim.events_executed += executed
            self.events_profiled += executed
            sim._running = False

    def run(self, sim: Any, max_events: Optional[int] = None) -> None:
        sim._stopped = False
        sim._running = True
        queue = sim._queue
        purge_head = queue._purge_head
        pop_head = queue._pop_head
        call = self._call
        limit = max_events if max_events is not None else -1
        executed = 0
        try:
            while not sim._stopped:
                if executed == limit:
                    break
                if purge_head() is None:
                    break
                entry = pop_head()
                sim._now = entry[0]
                executed += 1
                cb = entry[3].callback
                call(event_key(cb), cb)
        finally:
            sim.events_executed += executed
            self.events_profiled += executed
            sim._running = False

    # ------------------------------------------------------------------
    # Component-method instrumentation
    # ------------------------------------------------------------------
    def install(self, targets=DEFAULT_TARGETS) -> None:
        """Wrap the curated hot methods at class level (reversible)."""
        if self._installed:
            raise RuntimeError("recorder already installed")
        for mod_name, cls_name, methods in targets:
            try:
                mod = importlib.import_module(mod_name)
            except ImportError:
                continue
            cls = getattr(mod, cls_name, None)
            if cls is None:
                continue
            for name in methods:
                fn = cls.__dict__.get(name)
                if fn is None or not callable(fn):
                    continue
                setattr(cls, name, self._wrap(cls_name, name, fn))
                self._installed.append((cls, name, fn))

    def uninstall(self) -> None:
        """Restore every wrapped method."""
        while self._installed:
            cls, name, fn = self._installed.pop()
            setattr(cls, name, fn)

    @contextmanager
    def installed(self, targets=DEFAULT_TARGETS) -> Iterator["ProfileRecorder"]:
        self.install(targets)
        try:
            yield self
        finally:
            self.uninstall()

    def _wrap(self, comp: str, name: str,
              fn: Callable[..., Any]) -> Callable[..., Any]:
        key = (comp, name)
        call = self._call

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            return call(key, fn, args, kwargs if kwargs else None)

        wrapper.__name__ = name
        wrapper.__qualname__ = f"{comp}.{name}"
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """Rows ranked by self time (descending), JSON-friendly."""
        rows = [{"component": k[0], "event": k[1], "count": int(v[0]),
                 "self_s": v[1], "cum_s": v[2]}
                for k, v in self._stats.items()]
        rows.sort(key=lambda r: (-r["self_s"], r["component"], r["event"]))
        return rows

    def to_json(self) -> Dict[str, Any]:
        return {"total_s": round(self.total_s, 6),
                "events_profiled": self.events_profiled,
                "entries": [{**r, "self_s": round(r["self_s"], 6),
                             "cum_s": round(r["cum_s"], 6)}
                            for r in self.entries()]}

    def table(self, top: Optional[int] = None) -> str:
        """The ranked (component, event-type) self/cumulative table."""
        rows = self.entries()
        if top is not None:
            rows = rows[:top]
        total = self.total_s or 1e-12
        header = (f"{'component':<22} {'event':<28} {'count':>9} "
                  f"{'self (s)':>9} {'cum (s)':>9} {'self %':>7} {'cum %':>7}")
        lines = [header, "-" * len(header)]
        for r in rows:
            lines.append(
                f"{r['component']:<22} {r['event']:<28} {r['count']:>9} "
                f"{r['self_s']:>9.3f} {r['cum_s']:>9.3f} "
                f"{100 * r['self_s'] / total:>6.1f}% "
                f"{100 * r['cum_s'] / total:>6.1f}%")
        lines.append(f"{'TOTAL':<22} {'(event dispatch)':<28} "
                     f"{self.events_profiled:>9} {self.total_s:>9.3f}")
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Folded stacks (``a;b;c <microseconds>``), one line per path.

        Feed to ``flamegraph.pl`` or paste into speedscope to render a
        flamegraph of simulated-component wall time.
        """
        lines = []
        for path, self_s in sorted(self._folded.items()):
            frames = ";".join(f"{comp}.{event}" for comp, event in path)
            lines.append(f"{frames} {max(int(self_s * 1e6), 1)}")
        return "\n".join(lines)


class AllocationRecorder:
    """Allocation attribution for simulation runs (``profile --alloc``).

    The time profiler says where the *seconds* go; this says where the
    *objects* come from.  It samples the heap with :mod:`tracemalloc`
    around a run and attributes live blocks and bytes to source files,
    which is exactly the view that motivated the call-record arena: a
    boxed-dataclass call layer shows up as tens of thousands of live
    blocks in ``core/call.py``/``core/platform.py``, an arena-backed one
    as a handful of flat columns.

    Same determinism contract as :class:`ProfileRecorder`: tracemalloc
    only observes the allocator, so the traced run's digest is
    bit-identical to an untraced run's (CI smokes this).
    """

    def __init__(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self._stats: List[Tuple[str, int, int]] = []  # (file, blocks, bytes)

    @contextmanager
    def capturing(self, nframe: int = 1) -> Iterator["AllocationRecorder"]:
        """Trace allocations for the duration of the ``with`` block."""
        tracemalloc.start(nframe)
        try:
            yield self
        finally:
            snap = tracemalloc.take_snapshot()
            self.current_bytes, self.peak_bytes = (
                tracemalloc.get_traced_memory())
            tracemalloc.stop()
            stats = []
            for s in snap.statistics("filename"):
                frame = s.traceback[0]
                name = frame.filename
                # Shorten to the repo-relative path where possible so
                # tables are readable and stable across checkouts.
                for marker in ("/src/", "/lib/"):
                    cut = name.rfind(marker)
                    if cut != -1:
                        name = name[cut + len(marker):]
                        break
                stats.append((name, s.count, s.size))
            self._stats = stats

    # ------------------------------------------------------------------
    def entries(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Per-file live-allocation rows, largest byte count first."""
        rows = [{"file": f, "blocks": c, "kb": b / 1024.0}
                for f, c, b in self._stats]
        rows.sort(key=lambda r: (-r["kb"], r["file"]))
        return rows[:top] if top is not None else rows

    def to_json(self, top: Optional[int] = None) -> Dict[str, Any]:
        return {
            "peak_kb": round(self.peak_bytes / 1024.0, 1),
            "end_kb": round(self.current_bytes / 1024.0, 1),
            "entries": [{**r, "kb": round(r["kb"], 1)}
                        for r in self.entries(top)],
        }

    def table(self, top: Optional[int] = None) -> str:
        rows = self.entries(top)
        total_kb = sum(r["kb"] for r in rows) or 1e-12
        header = f"{'file':<52} {'blocks':>9} {'kb':>10} {'kb %':>7}"
        lines = [header, "-" * len(header)]
        for r in rows:
            lines.append(f"{r['file']:<52} {r['blocks']:>9} "
                         f"{r['kb']:>10.1f} "
                         f"{100 * r['kb'] / total_kb:>6.1f}%")
        lines.append(f"{'PEAK TRACED':<52} {'':>9} "
                     f"{self.peak_bytes / 1024.0:>10.1f}")
        lines.append(f"{'LIVE AT END':<52} {'':>9} "
                     f"{self.current_bytes / 1024.0:>10.1f}")
        return "\n".join(lines)
