"""Baseline conventional-FaaS models the paper argues against."""

from .coldstart import (
    BASELINE_STEPS,
    LifecycleBreakdown,
    LifecycleModel,
    baseline_model,
    xfaas_model,
)
from .container_pool import BaselineCallResult, ContainerPool, ContainerPoolParams

__all__ = [
    "BASELINE_STEPS",
    "BaselineCallResult",
    "ContainerPool",
    "ContainerPoolParams",
    "LifecycleBreakdown",
    "LifecycleModel",
    "baseline_model",
    "xfaas_model",
]
