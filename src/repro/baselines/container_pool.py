"""Per-function container pools — the conventional-FaaS execution model.

Each function gets its own containers (no cross-function sharing).  An
arriving call reuses an idle container when one exists; otherwise a new
container pays the Figure 1 cold-start sequence.  Idle containers are
kept warm for a keep-alive window (Wang et al. [45]: ≥10 minutes on the
major public platforms) and then shut down.  Memory is reserved for the
container's whole lifetime — including idle time — which is where the
baseline's hardware waste comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cluster.machine import CpuAccount
from ..core.call import CallIdAllocator
from ..sim.kernel import Simulator
from ..workloads.spec import FunctionSpec
from .coldstart import LifecycleModel, baseline_model


@dataclass(frozen=True)
class ContainerPoolParams:
    """Keep-alive, container footprint, and static-limit tunables."""

    keepalive_s: float = 600.0
    #: Memory a container reserves (function footprint + runtime).
    container_memory_mb: float = 512.0
    #: Static per-function concurrency limit (AWS-style, §1.1).
    default_concurrency_limit: int = 100
    core_mips: float = 4000.0

    def __post_init__(self) -> None:
        if self.keepalive_s < 0:
            raise ValueError("keepalive_s must be >= 0")
        if self.default_concurrency_limit < 1:
            raise ValueError("default_concurrency_limit must be >= 1")


@dataclass
class _Container:
    container_id: int
    function: str
    busy: bool = True
    idle_since: float = 0.0
    kill_handle: Optional[object] = None


@dataclass
class BaselineCallResult:
    """Outcome of one baseline invocation (timings + cold/rejected)."""

    submitted_at: float
    started_at: float
    finished_at: float
    cold: bool
    rejected: bool = False

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at

    @property
    def startup_delay(self) -> float:
        return self.started_at - self.submitted_at


class ContainerPool:
    """A region-sized pool of per-function containers with cold starts."""

    def __init__(self, sim: Simulator, capacity_cores: int = 128,
                 capacity_memory_mb: float = 256 * 1024.0,
                 params: ContainerPoolParams = ContainerPoolParams(),
                 lifecycle: Optional[LifecycleModel] = None,
                 on_done: Optional[Callable[[str, BaselineCallResult], None]]
                 = None) -> None:
        self.sim = sim
        self.params = params
        self.lifecycle = lifecycle or baseline_model()
        self.on_done = on_done
        self.cpu = CpuAccount(cores=capacity_cores)
        self.capacity_memory_mb = capacity_memory_mb
        self._memory_reserved = 0.0
        # Per-pool ids: two pools (or two back-to-back runs in one
        # process) number their containers identically (simlint SL001).
        self._container_ids = CallIdAllocator()
        self._specs: Dict[str, FunctionSpec] = {}
        self._limits: Dict[str, int] = {}
        self._containers: Dict[str, List[_Container]] = {}
        #: function name → its sampling stream; the registry hands back
        #: the same stream per name, so resolving once per function
        #: (not per call) is behaviorally identical (simlint SL007).
        self._streams: Dict[str, object] = {}
        self.cold_starts = 0
        self.warm_starts = 0
        self.rejections = 0
        self.completed = 0

    # ------------------------------------------------------------------
    def register_function(self, spec: FunctionSpec,
                          concurrency_limit: Optional[int] = None) -> None:
        self._specs[spec.name] = spec
        self._limits[spec.name] = (concurrency_limit or
                                   spec.concurrency_limit or
                                   self.params.default_concurrency_limit)
        self._containers.setdefault(spec.name, [])

    @property
    def memory_reserved_mb(self) -> float:
        return self._memory_reserved

    def live_containers(self, function: Optional[str] = None) -> int:
        if function is not None:
            return len(self._containers.get(function, ()))
        return sum(len(c) for c in self._containers.values())

    # ------------------------------------------------------------------
    def submit(self, function: str) -> None:
        """Invoke a function now (baseline has no queueing/deferral)."""
        spec = self._specs.get(function)
        if spec is None:
            raise KeyError(f"function {function!r} not registered")
        now = self.sim.now
        containers = self._containers[function]
        idle = next((c for c in containers if not c.busy), None)
        if idle is not None:
            self._start_call(spec, idle, now, cold=False)
            return
        # Need a new container: static concurrency limit + memory check.
        if len(containers) >= self._limits[function]:
            self._reject(function, now)
            return
        mem = self.params.container_memory_mb
        if self._memory_reserved + mem > self.capacity_memory_mb:
            self._reject(function, now)
            return
        container = _Container(container_id=self._container_ids.allocate(),
                               function=function)
        containers.append(container)
        self._memory_reserved += mem
        self._start_call(spec, container, now, cold=True)

    def _reject(self, function: str, now: float) -> None:
        self.rejections += 1
        if self.on_done is not None:
            self.on_done(function, BaselineCallResult(
                submitted_at=now, started_at=now, finished_at=now,
                cold=False, rejected=True))

    def _start_call(self, spec: FunctionSpec, container: _Container,
                    now: float, cold: bool) -> None:
        container.busy = True
        if container.kill_handle is not None:
            container.kill_handle.cancel()
            container.kill_handle = None
        rng = self._streams.get(spec.name)
        if rng is None:
            rng = self._streams[spec.name] = \
                self.sim.rng.stream(  # simlint: disable=SL007 -- memo miss
                    f"baseline/{spec.name}")
        cpu_minstr, _, exec_s = spec.profile.sample(rng, self.params.core_mips)
        startup = 0.0
        if cold:
            self.cold_starts += 1
            breakdown = self.lifecycle.breakdown(exec_s, cold=True)
            startup = breakdown.startup_overhead_s
        else:
            self.warm_starts += 1
        start_at = now + startup
        duration = max(exec_s, cpu_minstr / self.params.core_mips)
        cpu_load = (cpu_minstr / self.params.core_mips) / duration

        def begin() -> None:
            self.cpu.on_start(self.sim.now, cpu_load)
            self.sim.call_after(duration, finish)

        def finish() -> None:
            t = self.sim.now
            self.cpu.on_finish(t, cpu_load)
            self.completed += 1
            container.busy = False
            container.idle_since = t
            container.kill_handle = self.sim.call_after(
                self.params.keepalive_s, lambda: self._kill(container))
            if self.on_done is not None:
                self.on_done(spec.name, BaselineCallResult(
                    submitted_at=now, started_at=start_at,
                    finished_at=t, cold=cold))
        self.sim.call_after(startup, begin)

    def _kill(self, container: _Container) -> None:
        """Keep-alive expired (Figure 1 steps 9–10): shut the container down."""
        containers = self._containers.get(container.function, [])
        if container in containers and not container.busy:
            containers.remove(container)
            self._memory_reserved -= self.params.container_memory_mb

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        return self.cpu.utilization_total(self.sim.now)

    def take_utilization_window(self) -> float:
        return self.cpu.take_window(self.sim.now)
