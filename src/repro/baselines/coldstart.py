"""Figure 1's function lifecycle as an explicit cost model.

The paper's Figure 1 decomposes a FaaS invocation into ten steps; only
step (8) — executing the function — is billable work.  Steps (1)–(7) are
start-up overhead, step (9) is the idle keep-alive wait, and step (10)
is shutdown.  XFaaS eliminates (1)–(5) and (9)–(10) for all functions
and (6)–(7) for regularly invoked functions (§1.2).

:class:`LifecycleModel` makes that claim computable: it prices each step
for a conventional platform and for XFaaS, so benchmarks can report the
overhead-vs-billable breakdown per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Step number → (name, baseline seconds).  Durations follow public
#: measurements of container-based FaaS platforms (Wang et al. [45]):
#: seconds-scale environment provisioning, code fetch, runtime boot.
BASELINE_STEPS: Tuple[Tuple[int, str, float], ...] = (
    (1, "provision container/VM", 1.200),
    (2, "download function code", 0.450),
    (3, "start language runtime", 0.900),
    (4, "load function code", 0.150),
    (5, "initialize function", 0.200),
    (6, "profile for JIT", 0.600),
    (7, "JIT-compile", 0.400),
    # Step 8 (execute) is workload-dependent — supplied by the caller.
    (9, "idle keep-alive wait", 600.0),   # Wang et al.: ≥10 minutes
    (10, "shutdown", 0.300),
)


@dataclass(frozen=True)
class LifecycleBreakdown:
    """Per-call overhead accounting."""

    startup_overhead_s: float
    execute_s: float
    idle_overhead_s: float
    shutdown_s: float

    @property
    def total_s(self) -> float:
        return (self.startup_overhead_s + self.execute_s +
                self.idle_overhead_s + self.shutdown_s)

    @property
    def billable_fraction(self) -> float:
        """Fraction of the lifecycle that is step (8) billable work."""
        if self.total_s <= 0:
            return 0.0
        return self.execute_s / self.total_s


@dataclass(frozen=True)
class LifecycleModel:
    """Prices the Figure 1 steps for one platform configuration."""

    #: Which steps this platform pays on a cold invocation.
    steps_paid_cold: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 9, 10)
    #: Which steps a warm (container-reuse) invocation pays.
    steps_paid_warm: Tuple[int, ...] = ()
    step_costs: Dict[int, float] = field(
        default_factory=lambda: {n: c for n, _, c in BASELINE_STEPS})

    def breakdown(self, execute_s: float, cold: bool) -> LifecycleBreakdown:
        if execute_s < 0:
            raise ValueError("execute_s must be >= 0")
        steps = self.steps_paid_cold if cold else self.steps_paid_warm
        startup = sum(self.step_costs.get(n, 0.0) for n in steps
                      if n in (1, 2, 3, 4, 5, 6, 7))
        idle = sum(self.step_costs.get(n, 0.0) for n in steps if n == 9)
        shutdown = sum(self.step_costs.get(n, 0.0) for n in steps if n == 10)
        return LifecycleBreakdown(startup_overhead_s=startup,
                                  execute_s=execute_s,
                                  idle_overhead_s=idle,
                                  shutdown_s=shutdown)


def baseline_model() -> LifecycleModel:
    """Conventional FaaS: all overhead steps on cold start, 10-min idle."""
    return LifecycleModel()


def xfaas_model(regularly_invoked: bool = True,
                code_load_s: float = 0.100) -> LifecycleModel:
    """XFaaS: steps (1)–(5), (9), (10) eliminated; (6)–(7) eliminated
    for regularly invoked functions via cooperative JIT (§1.2).

    The residual cost is the SSD code load on a worker's first call for
    a function, modelled as a reduced step (4).
    """
    costs = {n: c for n, _, c in BASELINE_STEPS}
    costs[4] = code_load_s
    if regularly_invoked:
        steps = (4,)
    else:
        steps = (4, 6, 7)
    return LifecycleModel(steps_paid_cold=steps, steps_paid_warm=(),
                          step_costs=costs)
