"""Command-line interface: run paper-shaped simulations without code.

Examples::

    python -m repro simulate --hours 6 --rate 4 --regions 4
    python -m repro simulate --hours 24 --rate 8 --no-time-shifting
    python -m repro simulate --hours 2 --json
    python -m repro sweep --runs 4 --workers 4 --ablate time-shifting
    python -m repro lint --json
    python -m repro lifecycle
    python -m repro growth --years 5

``simulate`` builds the same paper-shaped workload the benchmark suite
uses (diurnal 4.3× peak-to-trough with midnight spike, Table 1 trigger
mix, Table 3 resource distributions), sizes a fleet for ~70% mean
utilization, runs it, and prints the Figure 2/7/8-style summary (or a
machine-readable JSON document with ``--json``).

``sweep`` fans a grid of (variant × seed) dayrun simulations out over
worker processes and reports per-variant mean ± 95% CI for the headline
statistics — the multi-seed backing for the Fig 7 utilization claim and
the ablation grid.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

from .analysis import (
    fleet_utilization_series,
    peak_to_trough,
    quota_cpu_series,
    received_vs_executed,
    region_utilization_averages,
)
from .analysis.shapes import complementarity, pearson
from .baselines import BASELINE_STEPS, baseline_model, xfaas_model
from .cluster import MachineSpec, size_topology_for_utilization
from .core import LocalityParams, PlatformParams, SchedulerParams, XFaaS
from .metrics import format_table, series_block
from .sim import Simulator
from .workloads import (
    ArrivalGenerator,
    DiurnalRate,
    build_population,
    estimate_demand_minstr,
    figure3_model,
)


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.shards is not None:
        return _cmd_simulate_parallel(args)
    horizon_s = args.hours * 3600.0
    sim = Simulator(seed=args.seed, queue_backend=args.queue_backend,
                    sanitize=args.sanitize)
    diurnal = DiurnalRate(base_rate=1.0, peak_to_trough=args.peak_to_trough)
    population = build_population(
        n_functions=args.functions, total_rate=args.rate,
        opportunistic_fraction=args.opportunistic, diurnal=diurnal)
    machine = MachineSpec(cores=2, core_mips=500, threads=48)
    demand = estimate_demand_minstr(population, core_mips=machine.core_mips)
    topology = size_topology_for_utilization(
        demand, target_utilization=args.target_utilization,
        n_regions=args.regions, machine_spec=machine)
    params = PlatformParams(
        scheduler=SchedulerParams(poll_interval_s=2.0, buffer_capacity=1000,
                                  runq_capacity=300),
        locality=LocalityParams(n_groups=args.locality_groups),
        time_shifting=not args.no_time_shifting,
        global_dispatch=not args.no_global_dispatch,
        locality_groups=args.locality_groups > 1,
    )
    platform = XFaaS(sim, topology, params)
    for spec in population.specs:
        platform.register_function(spec)
    ArrivalGenerator(sim, population,
                     lambda spec, delay: platform.submit(
                         spec.name, start_delay_s=delay),
                     tick_s=20.0, stop_at=horizon_s)

    if not args.json:
        print(f"simulating {args.hours} h, {args.rate} calls/s mean, "
              f"{topology.total_workers('default')} workers over "
              f"{args.regions} regions ...", flush=True)
    sim.run_until(horizon_s)

    received, executed = received_vs_executed(platform, 0, horizon_s)
    utils = region_utilization_averages(platform, min(3600.0, horizon_s / 4),
                                        horizon_s)
    fleet = [v for _, v in fleet_utilization_series(
        platform, min(3600.0, horizon_s / 4), horizon_s, 600.0)]

    if args.json:
        print(json.dumps(_simulate_summary(args, platform, sim,
                                           utils, fleet), indent=1))
        return 0

    print()
    print(series_block("received per minute", received))
    print()
    print(series_block("executed per minute", executed))
    print()
    rows = [[r, f"{100 * u:.1f}%"] for r, u in sorted(utils.items())]
    rows.append(["FLEET MEAN",
                 f"{100 * statistics.mean(utils.values()):.1f}%"])
    print(format_table(["region", "avg CPU utilization"], rows))
    print()
    reserved, opportunistic = quota_cpu_series(platform, 0, horizon_s)
    if sum(opportunistic) > 0 and len(reserved) >= 4:
        k = max(1, len(reserved) // 48)

        def bucket(xs):
            return [sum(xs[i:i + k]) for i in range(0, len(xs), k)]
        r_b, o_b = bucket(reserved), bucket(opportunistic)
        print("reserved/opportunistic CPU correlation: "
              f"{pearson(r_b, o_b):.3f} "
              f"(complementarity {complementarity(r_b, o_b):.3f})")
    print(f"submitted {platform.submitted_count}, "
          f"completed {platform.completed_count()}, "
          f"still queued {platform.pending_backlog()}")
    if fleet:
        print("fleet utilization: mean "
              f"{statistics.mean(fleet):.3f}, "
              f"peak-to-trough {peak_to_trough(fleet, 0.02):.2f}x "
              "(paper: 66% mean, 1.4x)")
    if args.expect_digest:
        digest = platform.traces.digest()
        if digest != args.expect_digest:
            print(f"DIGEST MISMATCH: run produced {digest}, expected "
                  f"{args.expect_digest}", file=sys.stderr)
            return 1
    return 0


def _cmd_simulate_parallel(args: argparse.Namespace) -> int:
    """``simulate --shards N``: the region-sharded parallel runner.

    Parity note: the parallel runner's digest is the *canonical*
    (order-independent) digest over the same per-call lifecycle tuples,
    and ``--shards 1`` runs the identical windowed machinery serially —
    so ``--shards 1`` and ``--shards N`` digests are bit-identical and
    directly comparable via ``--expect-digest``.
    """
    from .parsim import ParsimSpec, run_parsim

    if (args.no_time_shifting or args.no_global_dispatch
            or args.locality_groups != 3):
        print("simulate --shards does not support ablation flags "
              "(--no-time-shifting / --no-global-dispatch / "
              "--locality-groups); run them serially or via sweep",
              file=sys.stderr)
        return 2
    spec = ParsimSpec(
        scenario="dayrun", seed=args.seed,
        horizon_s=args.hours * 3600.0, total_rate=args.rate,
        n_functions=args.functions, n_regions=args.regions,
        opportunistic_fraction=args.opportunistic,
        peak_to_trough=args.peak_to_trough,
        target_utilization=args.target_utilization,
        n_shards=args.shards, queue_backend=args.queue_backend,
        sanitize=args.sanitize)
    if not args.json:
        print(f"simulating {args.hours} h, {args.rate} calls/s mean, "
              f"{args.regions} regions on {spec.effective_shards} "
              f"shard(s) ...", flush=True)
    result = run_parsim(spec)

    if args.json:
        doc = result.summary()
        doc["trace_digest"] = result.digest
        doc["config"] = {
            "hours": args.hours, "rate": args.rate,
            "functions": args.functions, "regions": args.regions,
            "seed": args.seed, "shards": args.shards,
            "queue_backend": args.queue_backend,
            "sanitize": args.sanitize,
        }
        print(json.dumps(doc, indent=1))
    else:
        if result.fallback_reason:
            print(f"note: {result.fallback_reason}")
        print(f"submitted {result.submitted}, completed {result.completed}, "
              f"still queued {result.backlog}, "
              f"throttled {result.throttled}")
        print(f"{result.events_executed} events across {result.n_shards} "
              f"shard(s), {result.barriers} barriers, "
              f"{result.messages_exchanged} cross-shard messages")
        print(f"canonical trace digest {result.digest}")
    if args.expect_digest and result.digest != args.expect_digest:
        print(f"DIGEST MISMATCH: parallel run produced {result.digest}, "
              f"expected {args.expect_digest} — shard-count parity "
              "violated", file=sys.stderr)
        return 1
    return 0


def _simulate_summary(args: argparse.Namespace, platform: XFaaS,
                      sim: Simulator, utils: dict, fleet: list) -> dict:
    """Machine-readable run summary for ``simulate --json``.

    Consumed by the sweep aggregator and CI; keys are stable API.
    """
    metrics = platform.metrics
    summary = {
        "config": {
            "hours": args.hours, "rate": args.rate,
            "functions": args.functions, "regions": args.regions,
            "seed": args.seed, "peak_to_trough": args.peak_to_trough,
            "opportunistic": args.opportunistic,
            "target_utilization": args.target_utilization,
            "locality_groups": args.locality_groups,
            "time_shifting": not args.no_time_shifting,
            "global_dispatch": not args.no_global_dispatch,
            "sanitize": args.sanitize,
        },
        "events_executed": sim.events_executed,
        "submitted": platform.submitted_count,
        "completed": platform.completed_count(),
        "backlog": platform.pending_backlog(),
        "throttled": (metrics.counter("calls.throttled").total
                      if metrics.has_counter("calls.throttled") else 0.0),
        "trace_digest": platform.traces.digest(),
        "region_utilization": {r: u for r, u in sorted(utils.items())},
        "fleet_util_mean": statistics.mean(fleet) if fleet else 0.0,
        "fleet_util_peak_to_trough": (peak_to_trough(fleet, 0.02)
                                      if fleet else 0.0),
    }
    if metrics.has_distribution("latency.completion"):
        lat = metrics.distribution("latency.completion")
        if len(lat):
            summary["latency_s"] = {"p50": lat.percentile(50),
                                    "p95": lat.percentile(95),
                                    "p99": lat.percentile(99)}
    return summary


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import ABLATIONS, build_grid, run_sweep, sweep_report

    variants = [("baseline", {})]
    for name in args.ablate or []:
        variants.append((f"no {name}", dict(ABLATIONS[name])))
    specs = build_grid(
        n_reps=args.runs, master_seed=args.master_seed, variants=variants,
        horizon_s=args.hours * 3600.0, total_rate=args.rate,
        n_functions=args.functions, n_regions=args.regions,
        queue_backend=args.queue_backend)

    if not args.json:
        print(f"sweeping {len(specs)} runs ({len(variants)} variant(s) × "
              f"{args.runs} seed(s), {args.hours} h each) on "
              f"{args.workers} worker(s) ...", flush=True)
    results = run_sweep(specs, workers=args.workers,
                        mp_context=args.start_method,
                        chunksize=args.chunksize)
    report = sweep_report(results)

    if args.json:
        print(json.dumps(report, indent=1))
        return 1 if report["n_failed"] else 0

    rows = []
    for res in report["runs"]:
        summ = res["summary"]
        rows.append([
            res["index"], res["label"], res["seed"] % 100_000,
            "ok" if res["ok"] else "FAILED",
            res["trace_digest"][:12],
            summ.get("completed", "-"),
            f"{summ['fleet_util_mean']:.3f}" if "fleet_util_mean" in summ
            else "-",
            f"{res['wall_s']:.1f}",
        ])
    print(format_table(
        ["run", "variant", "seed%1e5", "status", "digest", "completed",
         "fleet util", "wall (s)"], rows, title="sweep runs"))
    print()
    agg_rows = []
    for label, stats in report["aggregates"].items():
        for key in ("fleet_util_mean", "completed", "latency_p50_s",
                    "latency_p95_s"):
            if key in stats:
                s = stats[key]
                ci = "" if s["n"] < 2 else f" ± {s['ci95']:.4g}"
                agg_rows.append([label, key, s["n"],
                                 f"{s['mean']:.4g}{ci}"])
    print(format_table(["variant", "statistic", "n", "mean ± 95% CI"],
                       agg_rows, title="per-variant aggregates"))
    if report["merged_latency"]:
        print()
        print(format_table(
            ["variant", "samples", "P50 (s)", "P95 (s)", "P99 (s)"],
            [[label, q["count"], f"{q['p50_s']:.1f}", f"{q['p95_s']:.1f}",
              f"{q['p99_s']:.1f}"]
             for label, q in report["merged_latency"].items()],
            title="merged completion latency (all seeds pooled)"))
    failed = [r for r in report["runs"] if not r["ok"]]
    for res in failed:
        print(f"\nrun {res['index']} ({res['label']}) FAILED:\n{res['error']}")
    return 1 if failed else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profile import AllocationRecorder, ProfileRecorder
    from .scenarios import build_dayrun

    horizon_s = 600.0 if args.quick else args.hours * 3600.0
    if args.alloc:
        return _profile_alloc(args, horizon_s)
    recorder = ProfileRecorder()
    if not args.json:
        print(f"profiling dayrun ({horizon_s / 3600.0:.2f} h simulated, "
              f"seed {args.seed}) ...", flush=True)
    with recorder.installed():
        run = build_dayrun(seed=args.seed, horizon_s=horizon_s,
                           profiler=recorder)
    digest = run.platform.traces.digest()

    if args.flamegraph:
        folded = recorder.collapsed()
        if args.flamegraph == "-":
            print(folded)
        else:
            with open(args.flamegraph, "w") as fh:
                fh.write(folded + "\n")
            if not args.json:
                print(f"folded stacks written to {args.flamegraph} "
                      "(render with flamegraph.pl or speedscope)")

    if args.json:
        print(json.dumps({
            "horizon_s": horizon_s, "seed": args.seed,
            "events_executed": run.sim.events_executed,
            "trace_digest": digest,
            "profile": recorder.to_json(),
        }, indent=1))
    else:
        print()
        print(recorder.table(top=args.top))
        print()
        print(f"events executed: {run.sim.events_executed}, "
              f"trace digest {digest[:12]}...")
    if args.expect_digest and digest != args.expect_digest:
        print(f"DIGEST MISMATCH: profiled run produced {digest}, "
              f"expected {args.expect_digest} — profiling changed "
              "simulation behavior", file=sys.stderr)
        return 1
    return 0


def _profile_alloc(args: argparse.Namespace, horizon_s: float) -> int:
    """``profile --alloc``: tracemalloc attribution instead of wall time."""
    from .profile import AllocationRecorder
    from .scenarios import build_dayrun

    if not args.json:
        print(f"tracing allocations over a dayrun "
              f"({horizon_s / 3600.0:.2f} h simulated, seed {args.seed}) "
              "...", flush=True)
    recorder = AllocationRecorder()
    with recorder.capturing():
        run = build_dayrun(seed=args.seed, horizon_s=horizon_s)
    digest = run.platform.traces.digest()
    arena = run.platform.arena
    arena_stats = {
        "rows": len(arena),
        "allocated_total": arena.allocated_total,
        "released_total": arena.released_total,
        "live_at_end": arena.live_count(),
    }
    if args.json:
        print(json.dumps({
            "horizon_s": horizon_s, "seed": args.seed,
            "events_executed": run.sim.events_executed,
            "trace_digest": digest,
            "alloc": recorder.to_json(top=args.top),
            "call_arena": arena_stats,
        }, indent=1))
    else:
        print()
        print(recorder.table(top=args.top))
        print()
        print(f"call arena: {arena_stats['allocated_total']} calls in "
              f"{arena_stats['rows']} rows "
              f"({arena_stats['released_total']} slots recycled, "
              f"{arena_stats['live_at_end']} live at end)")
        print(f"events executed: {run.sim.events_executed}, "
              f"trace digest {digest[:12]}...")
    if args.expect_digest and digest != args.expect_digest:
        print(f"DIGEST MISMATCH: traced run produced {digest}, "
              f"expected {args.expect_digest} — allocation tracing "
              "changed simulation behavior", file=sys.stderr)
        return 1
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    rows = [[n, name, cost] for n, name, cost in BASELINE_STEPS]
    print(format_table(["step", "name", "baseline cost (s)"], rows,
                       title="Figure 1 — function lifecycle"))
    print()
    base = baseline_model().breakdown(args.execute_s, cold=True)
    xf = xfaas_model().breakdown(args.execute_s, cold=True)
    print(format_table(
        ["platform", "startup (s)", "idle+shutdown (s)", "billable %"],
        [["conventional (cold)", base.startup_overhead_s,
          base.idle_overhead_s + base.shutdown_s,
          100 * base.billable_fraction],
         ["XFaaS", xf.startup_overhead_s,
          xf.idle_overhead_s + xf.shutdown_s,
          100 * xf.billable_fraction]]))
    return 0


def _cmd_growth(args: argparse.Namespace) -> int:
    model = figure3_model()
    days = args.years * 365
    from .metrics import sparkline
    series = [v for _, v in model.series(days=days, step_days=30)]
    print("Figure 3 — normalized daily invocations")
    print("  " + sparkline(series))
    print(f"  growth over {args.years} years: "
          f"{model.growth_factor(days):.1f}x (paper: ~50x in 5 years)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XFaaS (SOSP 2023) reproduction — simulation CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sim_p = sub.add_parser("simulate",
                           help="run a paper-shaped workload simulation")
    sim_p.add_argument("--hours", type=float, default=6.0)
    sim_p.add_argument("--rate", type=float, default=4.0,
                       help="mean submissions/s across all functions")
    sim_p.add_argument("--functions", type=int, default=60)
    sim_p.add_argument("--regions", type=int, default=4)
    sim_p.add_argument("--seed", type=int, default=7)
    sim_p.add_argument("--peak-to-trough", type=float, default=4.3)
    sim_p.add_argument("--opportunistic", type=float, default=0.6,
                       help="fraction of eligible functions on "
                            "opportunistic quota")
    sim_p.add_argument("--target-utilization", type=float, default=0.70)
    sim_p.add_argument("--locality-groups", type=int, default=3)
    sim_p.add_argument("--no-time-shifting", action="store_true")
    sim_p.add_argument("--no-global-dispatch", action="store_true")
    sim_p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run region-sharded in N worker processes "
                            "(conservative bounded-lag windows; --shards 1 "
                            "runs the same machinery serially and yields a "
                            "bit-identical digest)")
    sim_p.add_argument("--queue-backend", default=None,
                       choices=("heap", "calendar"),
                       help="kernel event-queue implementation (both are "
                            "bit-identical; calendar is faster at scale)")
    sim_p.add_argument("--sanitize", action="store_true",
                       help="run under the simsan runtime sanitizer: "
                            "bit-identical digest, but cross-shard "
                            "access / RNG-order / dict-order violations "
                            "raise (works serially and with --shards)")
    sim_p.add_argument("--expect-digest", metavar="SHA256",
                       help="fail unless the run's trace digest matches "
                            "(CI parity check)")
    sim_p.add_argument("--json", action="store_true",
                       help="emit the run summary as machine-readable JSON")
    sim_p.set_defaults(func=_cmd_simulate)

    sweep_p = sub.add_parser(
        "sweep", help="run a multi-seed / ablation grid across CPU cores")
    sweep_p.add_argument("--runs", type=int, default=4,
                         help="seeds (repetitions) per variant")
    sweep_p.add_argument("--master-seed", type=int, default=7,
                         help="per-run seeds are derived from this")
    sweep_p.add_argument("--hours", type=float, default=2.0,
                         help="simulated horizon per run")
    sweep_p.add_argument("--rate", type=float, default=4.0)
    sweep_p.add_argument("--functions", type=int, default=40)
    sweep_p.add_argument("--regions", type=int, default=4)
    sweep_p.add_argument("--ablate", action="append",
                         choices=sorted(
                             ("time-shifting", "global-dispatch",
                              "locality-groups", "cooperative-jit", "aimd")),
                         help="add a variant with this §1.2 technique off "
                              "(repeatable)")
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = serial, in-process)")
    sweep_p.add_argument("--start-method", default="spawn",
                         choices=("spawn", "fork", "forkserver"))
    sweep_p.add_argument("--chunksize", type=int, default=None,
                         help="specs dispatched per pool task (default 1)")
    sweep_p.add_argument("--queue-backend", default=None,
                         choices=("heap", "calendar"),
                         help="kernel event-queue implementation for every "
                              "run (bit-identical; perf knob, not a "
                              "variant axis)")
    sweep_p.add_argument("--json", action="store_true",
                         help="emit the full sweep report as JSON")
    sweep_p.set_defaults(func=_cmd_sweep)

    prof_p = sub.add_parser(
        "profile",
        help="run a dayrun under the deterministic time-attribution "
             "profiler and print where wall time goes")
    prof_p.add_argument("--quick", action="store_true",
                        help="10 simulated minutes instead of --hours")
    prof_p.add_argument("--hours", type=float, default=1.0)
    prof_p.add_argument("--seed", type=int, default=7)
    prof_p.add_argument("--top", type=int, default=None,
                        help="show only the top N rows by self time")
    prof_p.add_argument("--json", action="store_true",
                        help="emit the attribution data as JSON")
    prof_p.add_argument("--flamegraph", metavar="PATH",
                        help="write collapsed stacks for flamegraph.pl / "
                             "speedscope ('-' for stdout)")
    prof_p.add_argument("--alloc", action="store_true",
                        help="attribute allocations (tracemalloc) instead "
                             "of wall time: live blocks/bytes per source "
                             "file, peak traced memory, and call-arena "
                             "recycling stats")
    prof_p.add_argument("--expect-digest", metavar="SHA256",
                        help="fail unless the profiled run's trace digest "
                             "matches (CI parity check)")
    prof_p.set_defaults(func=_cmd_profile)

    # NOTE: the `lint` subcommand is dispatched in main() before this
    # parser runs (argparse.REMAINDER mis-parses leading options,
    # bpo-17050); it is registered here only so --help lists it.
    sub.add_parser("lint",
                   help="determinism & sim-safety static analysis "
                        "(SL001-SL015; see `python -m repro lint --help`)")

    life_p = sub.add_parser("lifecycle",
                            help="print the Figure 1 lifecycle cost table")
    life_p.add_argument("--execute-s", type=float, default=1.0)
    life_p.set_defaults(func=_cmd_lifecycle)

    growth_p = sub.add_parser("growth",
                              help="print the Figure 3 growth curve")
    growth_p.add_argument("--years", type=int, default=5)
    growth_p.set_defaults(func=_cmd_growth)
    return parser


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # Self-contained, stdlib-only; owns its argument parsing.
        from .simlint.cli import main as lint_main
        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
