"""Command-line interface: run paper-shaped simulations without code.

Examples::

    python -m repro simulate --hours 6 --rate 4 --regions 4
    python -m repro simulate --hours 24 --rate 8 --no-time-shifting
    python -m repro lifecycle
    python -m repro growth --years 5

``simulate`` builds the same paper-shaped workload the benchmark suite
uses (diurnal 4.3× peak-to-trough with midnight spike, Table 1 trigger
mix, Table 3 resource distributions), sizes a fleet for ~70% mean
utilization, runs it, and prints the Figure 2/7/8-style summary.
"""

from __future__ import annotations

import argparse
import statistics
import sys

from .analysis import (fleet_utilization_series, peak_to_trough,
                       quota_cpu_series, received_vs_executed,
                       region_utilization_averages)
from .analysis.shapes import complementarity, pearson
from .baselines import BASELINE_STEPS, baseline_model, xfaas_model
from .cluster import MachineSpec, size_topology_for_utilization
from .core import LocalityParams, PlatformParams, SchedulerParams, XFaaS
from .metrics import format_table, series_block
from .sim import Simulator
from .workloads import (ArrivalGenerator, DiurnalRate, build_population,
                        estimate_demand_minstr, figure3_model)


def _cmd_simulate(args: argparse.Namespace) -> int:
    horizon_s = args.hours * 3600.0
    sim = Simulator(seed=args.seed)
    diurnal = DiurnalRate(base_rate=1.0, peak_to_trough=args.peak_to_trough)
    population = build_population(
        n_functions=args.functions, total_rate=args.rate,
        opportunistic_fraction=args.opportunistic, diurnal=diurnal)
    machine = MachineSpec(cores=2, core_mips=500, threads=48)
    demand = estimate_demand_minstr(population, core_mips=machine.core_mips)
    topology = size_topology_for_utilization(
        demand, target_utilization=args.target_utilization,
        n_regions=args.regions, machine_spec=machine)
    params = PlatformParams(
        scheduler=SchedulerParams(poll_interval_s=2.0, buffer_capacity=1000,
                                  runq_capacity=300),
        locality=LocalityParams(n_groups=args.locality_groups),
        time_shifting=not args.no_time_shifting,
        global_dispatch=not args.no_global_dispatch,
        locality_groups=args.locality_groups > 1,
    )
    platform = XFaaS(sim, topology, params)
    for spec in population.specs:
        platform.register_function(spec)
    ArrivalGenerator(sim, population,
                     lambda spec, delay: platform.submit(
                         spec.name, start_delay_s=delay),
                     tick_s=20.0, stop_at=horizon_s)

    print(f"simulating {args.hours} h, {args.rate} calls/s mean, "
          f"{topology.total_workers('default')} workers over "
          f"{args.regions} regions ...", flush=True)
    sim.run_until(horizon_s)

    received, executed = received_vs_executed(platform, 0, horizon_s)
    utils = region_utilization_averages(platform, min(3600.0, horizon_s / 4),
                                        horizon_s)
    fleet = [v for _, v in fleet_utilization_series(
        platform, min(3600.0, horizon_s / 4), horizon_s, 600.0)]

    print()
    print(series_block("received per minute", received))
    print()
    print(series_block("executed per minute", executed))
    print()
    rows = [[r, f"{100 * u:.1f}%"] for r, u in sorted(utils.items())]
    rows.append(["FLEET MEAN",
                 f"{100 * statistics.mean(utils.values()):.1f}%"])
    print(format_table(["region", "avg CPU utilization"], rows))
    print()
    reserved, opportunistic = quota_cpu_series(platform, 0, horizon_s)
    if sum(opportunistic) > 0 and len(reserved) >= 4:
        k = max(1, len(reserved) // 48)
        bucket = lambda xs: [sum(xs[i:i + k])
                             for i in range(0, len(xs), k)]
        r_b, o_b = bucket(reserved), bucket(opportunistic)
        print(f"reserved/opportunistic CPU correlation: "
              f"{pearson(r_b, o_b):.3f} "
              f"(complementarity {complementarity(r_b, o_b):.3f})")
    print(f"submitted {platform.submitted_count}, "
          f"completed {platform.completed_count()}, "
          f"still queued {platform.pending_backlog()}")
    if fleet:
        print(f"fleet utilization: mean "
              f"{statistics.mean(fleet):.3f}, "
              f"peak-to-trough {peak_to_trough(fleet, 0.02):.2f}x "
              f"(paper: 66% mean, 1.4x)")
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    rows = [[n, name, cost] for n, name, cost in BASELINE_STEPS]
    print(format_table(["step", "name", "baseline cost (s)"], rows,
                       title="Figure 1 — function lifecycle"))
    print()
    base = baseline_model().breakdown(args.execute_s, cold=True)
    xf = xfaas_model().breakdown(args.execute_s, cold=True)
    print(format_table(
        ["platform", "startup (s)", "idle+shutdown (s)", "billable %"],
        [["conventional (cold)", base.startup_overhead_s,
          base.idle_overhead_s + base.shutdown_s,
          100 * base.billable_fraction],
         ["XFaaS", xf.startup_overhead_s,
          xf.idle_overhead_s + xf.shutdown_s,
          100 * xf.billable_fraction]]))
    return 0


def _cmd_growth(args: argparse.Namespace) -> int:
    model = figure3_model()
    days = args.years * 365
    from .metrics import sparkline
    series = [v for _, v in model.series(days=days, step_days=30)]
    print("Figure 3 — normalized daily invocations")
    print("  " + sparkline(series))
    print(f"  growth over {args.years} years: "
          f"{model.growth_factor(days):.1f}x (paper: ~50x in 5 years)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XFaaS (SOSP 2023) reproduction — simulation CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sim_p = sub.add_parser("simulate",
                           help="run a paper-shaped workload simulation")
    sim_p.add_argument("--hours", type=float, default=6.0)
    sim_p.add_argument("--rate", type=float, default=4.0,
                       help="mean submissions/s across all functions")
    sim_p.add_argument("--functions", type=int, default=60)
    sim_p.add_argument("--regions", type=int, default=4)
    sim_p.add_argument("--seed", type=int, default=7)
    sim_p.add_argument("--peak-to-trough", type=float, default=4.3)
    sim_p.add_argument("--opportunistic", type=float, default=0.6,
                       help="fraction of eligible functions on "
                            "opportunistic quota")
    sim_p.add_argument("--target-utilization", type=float, default=0.70)
    sim_p.add_argument("--locality-groups", type=int, default=3)
    sim_p.add_argument("--no-time-shifting", action="store_true")
    sim_p.add_argument("--no-global-dispatch", action="store_true")
    sim_p.set_defaults(func=_cmd_simulate)

    life_p = sub.add_parser("lifecycle",
                            help="print the Figure 1 lifecycle cost table")
    life_p.add_argument("--execute-s", type=float, default=1.0)
    life_p.set_defaults(func=_cmd_lifecycle)

    growth_p = sub.add_parser("growth",
                              help="print the Figure 3 growth curve")
    growth_p.add_argument("--years", type=int, default=5)
    growth_p.set_defaults(func=_cmd_growth)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
