"""Orchestration-workflow triggers (§3.1: one of the supported triggers).

A workflow is an ordered chain of functions: step *n+1* is submitted
when step *n* completes successfully.  Failed steps (retries exhausted)
abort the workflow instance.  The engine hangs off the platform's
completion listener — it never touches scheduler internals, exactly like
the real orchestration products layered on XFaaS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.call import CallIdAllocator, CallOutcome, FunctionCall


@dataclass(frozen=True)
class WorkflowSpec:
    """An ordered chain of function names.

    ``propagate_zones`` implements §4.7's dynamic labeling: each step's
    output carries the classification level of the zone it executed in,
    so the next step's *source* level is the running maximum — data can
    only flow onward into functions at equal or higher levels
    (Bell–LaPadula), and a down-classified step aborts the instance.
    """

    name: str
    steps: Sequence[str]
    propagate_zones: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workflow name must be non-empty")
        if not self.steps:
            raise ValueError("workflow needs at least one step")


@dataclass
class WorkflowInstance:
    """One execution of a workflow."""

    instance_id: int
    spec: WorkflowSpec
    started_at: float
    current_step: int = 0
    finished_at: Optional[float] = None
    status: str = "running"   # running | completed | failed
    #: Bell–LaPadula level the instance's data currently carries.
    data_level: int = 0

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class WorkflowEngine:
    """Drives workflow instances through an XFaaS platform."""

    def __init__(self, platform) -> None:
        self.platform = platform
        self._workflows: Dict[str, WorkflowSpec] = {}
        #: call_id → (instance, step index) for in-flight steps.
        self._inflight: Dict[int, tuple] = {}
        self.instances: List[WorkflowInstance] = []
        # Per-engine ids: instance numbering restarts with each engine,
        # keeping back-to-back runs replayable (simlint SL001).
        self._instance_ids = CallIdAllocator()
        platform.add_completion_listener(self._on_completion)

    def register(self, spec: WorkflowSpec) -> None:
        for step in spec.steps:
            if step not in self.platform.functions():
                raise KeyError(
                    f"workflow step {step!r} is not a registered function")
        self._workflows[spec.name] = spec

    def start(self, workflow_name: str,
              source_level: int = 0) -> WorkflowInstance:
        """Begin one instance; returns its handle.

        ``source_level`` is the classification of the data the workflow
        starts from (§4.7); it propagates through the chain.
        """
        spec = self._workflows.get(workflow_name)
        if spec is None:
            raise KeyError(f"unknown workflow {workflow_name!r}")
        instance = WorkflowInstance(instance_id=self._instance_ids.allocate(),
                                    spec=spec,
                                    started_at=self.platform.sim.now,
                                    data_level=source_level)
        self.instances.append(instance)
        self._submit_step(instance)
        return instance

    def _submit_step(self, instance: WorkflowInstance) -> None:
        step_fn = instance.spec.steps[instance.current_step]
        source_level = (instance.data_level
                        if instance.spec.propagate_zones else 0)
        call = self.platform.submit(step_fn, source_level=source_level)
        if call is None:
            # Throttled at submission: the workflow fails fast (callers
            # are expected to retry the whole instance).
            instance.status = "failed"
            instance.finished_at = self.platform.sim.now
            return
        self._inflight[call.call_id] = (instance, instance.current_step)

    def _on_completion(self, call: FunctionCall,
                       outcome: CallOutcome) -> None:
        entry = self._inflight.pop(call.call_id, None)
        if entry is None:
            return
        instance, step = entry
        now = self.platform.sim.now
        if outcome is not CallOutcome.OK:
            instance.status = "failed"
            instance.finished_at = now
            return
        if instance.spec.propagate_zones:
            # §4.7: output data carries the executing zone's level.
            instance.data_level = max(instance.data_level,
                                      call.spec.isolation_level)
        if step + 1 >= len(instance.spec.steps):
            instance.status = "completed"
            instance.finished_at = now
            return
        instance.current_step = step + 1
        self._submit_step(instance)

    # ------------------------------------------------------------------
    def completed(self) -> List[WorkflowInstance]:
        return [i for i in self.instances if i.status == "completed"]

    def failed(self) -> List[WorkflowInstance]:
        return [i for i in self.instances if i.status == "failed"]
