"""Timer triggers: functions that fire on pre-set schedules (§3.1).

Timer-triggered functions "automatically fire based on a pre-set
timing".  Two schedule kinds cover the paper's usage:

* :class:`IntervalSchedule` — every N seconds (cron-style periodic jobs);
* :class:`DailySchedule` — at fixed times of day (the Notification
  System's per-product campaign times, §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from ..sim.kernel import Simulator

DAY_S = 86_400.0


class Schedule(Protocol):
    """Yields the next firing time strictly after ``now``."""

    def next_fire(self, now: float) -> float: ...


@dataclass(frozen=True)
class IntervalSchedule:
    """Fire every ``interval_s`` seconds, starting at ``offset_s``."""

    interval_s: float
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.offset_s < 0:
            raise ValueError("offset_s must be >= 0")

    def next_fire(self, now: float) -> float:
        if now < self.offset_s:
            return self.offset_s
        periods = int((now - self.offset_s) // self.interval_s) + 1
        return self.offset_s + periods * self.interval_s


@dataclass(frozen=True)
class DailySchedule:
    """Fire at fixed seconds-of-day, every day."""

    times_of_day_s: Sequence[float]

    def __post_init__(self) -> None:
        if not self.times_of_day_s:
            raise ValueError("need at least one time of day")
        for t in self.times_of_day_s:
            if not 0 <= t < DAY_S:
                raise ValueError(f"time of day {t} outside [0, 86400)")

    def next_fire(self, now: float) -> float:
        day_start = (now // DAY_S) * DAY_S
        candidates = [day_start + t for t in sorted(self.times_of_day_s)]
        for c in candidates:
            if c > now:
                return c
        return candidates[0] + DAY_S


class TimerTriggerService:
    """Fires platform submissions on registered schedules.

    ``calls_per_fire`` models campaign-style fan-out (one timer firing
    submits a batch of calls, like the Notification System selecting
    target users, §3.2).
    """

    def __init__(self, sim: Simulator, submit_fn) -> None:
        self.sim = sim
        self.submit_fn = submit_fn
        self.fired_count = 0
        self.submitted_count = 0
        self._registrations: List[tuple] = []

    def register(self, function_name: str, schedule: Schedule,
                 calls_per_fire: int = 1,
                 stop_at: Optional[float] = None) -> None:
        if calls_per_fire < 1:
            raise ValueError("calls_per_fire must be >= 1")
        self._registrations.append((function_name, schedule))
        self._arm(function_name, schedule, calls_per_fire, stop_at)

    def _arm(self, name: str, schedule: Schedule, calls_per_fire: int,
             stop_at: Optional[float]) -> None:
        fire_at = schedule.next_fire(self.sim.now)
        if stop_at is not None and fire_at >= stop_at:
            return

        def fire() -> None:
            self.fired_count += 1
            for _ in range(calls_per_fire):
                self.submit_fn(name)
                self.submitted_count += 1
            self._arm(name, schedule, calls_per_fire, stop_at)
        self.sim.call_at(fire_at, fire)
