"""Data-warehouse triggers: table landings fire functions (§2.2, §4.2).

The paper's midnight peak exists because "Hive-like big-data pipelines
create data tables around midnight.  The availability of the data
triggers the invocation of many functions at a high volume."  The model:
pipelines land tables on daily schedules clustered near midnight; each
landed table fires the functions subscribed to it, with a fan-out
proportional to the table's partition count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..sim.kernel import Simulator

DAY_S = 86_400.0


@dataclass(frozen=True)
class TableSpec:
    """A warehouse table landed daily by a pipeline."""

    name: str
    #: Second-of-day when the pipeline lands the table.
    lands_at_s: float
    #: Partitions per landing — one function call fires per partition.
    partitions: int = 100
    #: Jitter on the landing time (pipelines are never exactly on time).
    jitter_s: float = 600.0

    def __post_init__(self) -> None:
        if not 0 <= self.lands_at_s < DAY_S:
            raise ValueError("lands_at_s must be within a day")
        if self.partitions < 1:
            raise ValueError("partitions must be >= 1")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")


class DataWarehouse:
    """Tables, their landing schedules, and function subscriptions."""

    def __init__(self, sim: Simulator,
                 rng_name: str = "warehouse") -> None:
        self.sim = sim
        self.rng = sim.rng.stream(rng_name)
        self._tables: Dict[str, TableSpec] = {}
        self._subscriptions: Dict[str, List[str]] = {}
        self.landings: List[tuple] = []

    def register_table(self, table: TableSpec) -> None:
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        self._subscriptions.setdefault(table.name, [])

    def subscribe(self, table_name: str, function_name: str) -> None:
        """Fire ``function_name`` once per partition on each landing."""
        if table_name not in self._tables:
            raise KeyError(f"unknown table {table_name!r}")
        self._subscriptions[table_name].append(function_name)

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def start(self, submit_fn: Callable[[str], object],
              days: int = 1) -> None:
        """Schedule all landings for the next ``days`` days."""
        if days < 1:
            raise ValueError("days must be >= 1")
        for day in range(days):
            day_start = (self.sim.now // DAY_S) * DAY_S + day * DAY_S
            for table in self._tables.values():
                jitter = self.rng.uniform(-table.jitter_s, table.jitter_s) \
                    if table.jitter_s > 0 else 0.0
                when = max(self.sim.now, day_start + table.lands_at_s + jitter)
                self.sim.call_at(when, self._land(table, submit_fn))

    def _land(self, table: TableSpec,
              submit_fn: Callable[[str], object]) -> Callable[[], None]:
        def fire() -> None:
            self.landings.append((self.sim.now, table.name))
            for function_name in self._subscriptions[table.name]:
                for _ in range(table.partitions):
                    submit_fn(function_name)
        return fire


def midnight_pipelines(n_tables: int = 10, partitions: int = 200,
                       spread_s: float = 5400.0) -> List[TableSpec]:
    """The §2.2 midnight cluster: tables landing around 00:00 ± spread."""
    if n_tables < 1:
        raise ValueError("n_tables must be >= 1")
    tables = []
    for i in range(n_tables):
        # Spread landings across [-spread, +spread] around midnight.
        offset = -spread_s + (2 * spread_s) * i / max(n_tables - 1, 1)
        lands_at = offset % DAY_S
        tables.append(TableSpec(name=f"daily_table_{i:02d}",
                                lands_at_s=lands_at,
                                partitions=partitions))
    return tables
