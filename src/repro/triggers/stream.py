"""Data-stream triggers: Kafka-like streams firing function calls (§2.1).

The paper attributes the late-2022 volume inflection to "a new feature
that allows for the use of Kafka-like data streams to trigger function
calls"; event-triggered functions (85% of invocations, Table 1) are fed
this way.  The model: producers append events to a partitioned stream,
and a trigger service consumes each partition, submitting one call per
event (or per small batch) while tracking consumer lag.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..sim.kernel import Simulator


@dataclass
class StreamEvent:
    """One record in a stream partition."""

    offset: int
    produced_at: float
    payload_kb: float = 1.0


class DataStream:
    """A partitioned, append-only stream (Scribe/Kafka stand-in)."""

    def __init__(self, sim: Simulator, name: str, partitions: int = 4) -> None:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.sim = sim
        self.name = name
        self.partitions = partitions
        self._logs: List[Deque[StreamEvent]] = [deque()
                                                for _ in range(partitions)]
        self._next_offset = [0] * partitions
        self.produced_count = 0

    def produce(self, partition: Optional[int] = None,
                payload_kb: float = 1.0) -> StreamEvent:
        """Append one event (round-robin partition when unspecified)."""
        if partition is None:
            partition = self.produced_count % self.partitions
        if not 0 <= partition < self.partitions:
            raise ValueError(f"partition {partition} out of range")
        event = StreamEvent(offset=self._next_offset[partition],
                            produced_at=self.sim.now,
                            payload_kb=payload_kb)
        self._next_offset[partition] += 1
        self._logs[partition].append(event)
        self.produced_count += 1
        return event

    def consume(self, partition: int, max_events: int) -> List[StreamEvent]:
        log = self._logs[partition]
        out = []
        while log and len(out) < max_events:
            out.append(log.popleft())
        return out

    def lag(self, partition: Optional[int] = None) -> int:
        """Unconsumed events (per partition, or total)."""
        if partition is not None:
            return len(self._logs[partition])
        return sum(len(log) for log in self._logs)


class StreamTriggerService:
    """Consumes a stream and submits one function call per event.

    Consumption is polled per partition (like the real consumers'
    fetch loops); each event's end-to-end latency — produce to function
    completion — is what Falco's 15 s SLO is measured on.
    """

    def __init__(self, sim: Simulator, stream: DataStream,
                 function_name: str,
                 submit_fn: Callable[[str], object],
                 poll_interval_s: float = 1.0,
                 max_batch: int = 100) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.sim = sim
        self.stream = stream
        self.function_name = function_name
        self.submit_fn = submit_fn
        self.max_batch = max_batch
        self.triggered_count = 0
        #: produce→submit delays, for trigger-side latency accounting.
        self.trigger_delays: List[float] = []
        self._task = sim.every(poll_interval_s, self._poll,
                               jitter=poll_interval_s * 0.05)

    def _poll(self) -> None:
        now = self.sim.now
        for partition in range(self.stream.partitions):
            for event in self.stream.consume(partition, self.max_batch):
                self.submit_fn(self.function_name)
                self.triggered_count += 1
                self.trigger_delays.append(now - event.produced_at)

    def stop(self) -> None:
        self._task.cancel()
