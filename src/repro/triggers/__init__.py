"""Trigger substrates: timers, data streams, warehouse events, workflows.

§3.1 classifies XFaaS functions by trigger — queue (direct submission),
event (data warehouse / data streams), and timer — and §3.1 also lists
orchestration workflows among supported triggers.  This package builds
each trigger source as a component that drives ``platform.submit``.
"""

from .stream import DataStream, StreamEvent, StreamTriggerService
from .timer import DailySchedule, IntervalSchedule, Schedule, TimerTriggerService
from .warehouse import DataWarehouse, TableSpec, midnight_pipelines
from .workflow import WorkflowEngine, WorkflowInstance, WorkflowSpec

__all__ = [
    "DailySchedule",
    "DataStream",
    "DataWarehouse",
    "IntervalSchedule",
    "Schedule",
    "StreamEvent",
    "StreamTriggerService",
    "TableSpec",
    "TimerTriggerService",
    "WorkflowEngine",
    "WorkflowInstance",
    "WorkflowSpec",
    "midnight_pipelines",
]
