"""Reproduction of *XFaaS: Hyperscale and Low Cost Serverless Functions
at Meta* (Sahraei et al., SOSP 2023) on a deterministic discrete-event
simulator.

Quickstart::

    from repro import Simulator, XFaaS, build_topology, FunctionSpec

    sim = Simulator(seed=42)
    platform = XFaaS(sim, build_topology(n_regions=4, workers_per_unit=8))
    spec = FunctionSpec(name="hello")
    platform.register_function(spec)
    platform.submit("hello")
    sim.run_until(60.0)
    print(platform.completed_count())

Subpackages:

* :mod:`repro.sim` — discrete-event kernel.
* :mod:`repro.cluster` — machines, regions, network, topology.
* :mod:`repro.workloads` — Table 1–3 workload models and generators.
* :mod:`repro.core` — every XFaaS component of the paper's Figure 6.
* :mod:`repro.downstream` — TAO/WTCache/KVStore back-pressure models.
* :mod:`repro.baselines` — AWS-Lambda-style cold-start comparator.
* :mod:`repro.analysis` — series/shape helpers for the benchmarks.
"""

from .cluster import MachineSpec, NetworkModel, Region, Topology, build_topology
from .core import CallOutcome, CallState, FunctionCall, PlatformParams, XFaaS
from .downstream import (
    DownstreamService,
    Incident,
    IncidentInjector,
    ServiceParams,
    ServiceRegistry,
    build_tao_stack,
)
from .sim import Simulator
from .workloads import (
    Criticality,
    DiurnalRate,
    FunctionSpec,
    QuotaType,
    ResourceProfile,
    RetryPolicy,
    TriggerType,
    build_population,
)

__version__ = "1.0.0"

__all__ = [
    "CallOutcome",
    "CallState",
    "Criticality",
    "DiurnalRate",
    "DownstreamService",
    "FunctionCall",
    "FunctionSpec",
    "Incident",
    "IncidentInjector",
    "MachineSpec",
    "NetworkModel",
    "PlatformParams",
    "QuotaType",
    "Region",
    "ResourceProfile",
    "RetryPolicy",
    "ServiceParams",
    "ServiceRegistry",
    "Simulator",
    "Topology",
    "TriggerType",
    "XFaaS",
    "build_population",
    "build_tao_stack",
    "build_topology",
]
