"""Canonical paper-shaped simulation scenarios as library code.

Historically the full-day reference run lived in ``benchmarks/conftest``
where only the pytest benchmarks could reach it.  The sweep engine
(:mod:`repro.sweep`) runs the same scenario in worker *processes*, so
the builder has to be importable library code — ``benchmarks/conftest``
now re-exports from here.

:func:`build_dayrun` keeps bit-identical default behavior (same
construction order, same RNG draws) so trace digests recorded in
``BENCH_kernel.json`` remain comparable across the move, while gaining
the knobs a sweep grid varies: seed, horizon, rate, population size,
region count, and §1.2 ablation flags applied on top of the default
parameters.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from . import PlatformParams, Simulator, XFaaS
from .analysis import fleet_utilization_series
from .cluster import MachineSpec, build_topology, size_topology_for_utilization
from .core import LocalityParams, SchedulerParams, UtilizationParams
from .downstream import ServiceRegistry, build_tao_stack
from .workloads import (
    ArrivalGenerator,
    DiurnalRate,
    TriggerType,
    attach_spike,
    build_population,
    estimate_demand_minstr,
    figure4_spike,
)

DAY_S = 86_400.0


@dataclass
class DayRun:
    """A completed full-day reference simulation plus its platform."""

    sim: Simulator
    platform: XFaaS
    population: object
    spiky_function: Optional[str]
    horizon_s: float
    n_regions: int

    @property
    def specs_by_trigger(self):
        counts = {t.value: 0 for t in TriggerType}
        for load in self.population.loads:
            counts[load.spec.trigger.value] += 1
        return counts


def default_dayrun_params() -> PlatformParams:
    """The reference parameterization shared by every dayrun consumer."""
    return PlatformParams(
        scheduler=SchedulerParams(poll_interval_s=2.0, buffer_capacity=1000,
                                  runq_capacity=300),
        utilization=UtilizationParams(target_utilization=0.72),
        locality=LocalityParams(n_groups=3),
        distinct_window_s=3600.0,
        memory_sample_interval_s=120.0,
    )


def build_dayrun(seed: int = 7, total_rate: float = 8.0,
                 horizon_s: float = DAY_S,
                 params_override: PlatformParams = None,
                 n_functions: int = 60, n_regions: int = 6,
                 opportunistic_fraction: float = 0.6,
                 peak_to_trough: float = 4.3,
                 target_utilization: float = 0.70,
                 overrides: Optional[dict] = None,
                 profiler: Optional[object] = None,
                 queue_backend: Optional[str] = None,
                 sanitize: bool = False,
                 gc_mode: Optional[str] = None) -> DayRun:
    """Build and run the shared full-day simulation.

    The default invocation reproduces the paper-shaped workload used by
    Figures 2/4/7/8/9/10/11 and Tables 1/3: diurnal 4.3× peak-to-trough
    with the midnight spike, Table 1 category mix, Table 3 resource
    shapes, a Figure 4 spiky function, reserved + opportunistic quota
    mix, and the TAO downstream stack.  ``overrides`` replaces fields on
    the (possibly overridden) :class:`PlatformParams` — the sweep engine
    uses it for ablation flags like ``{"time_shifting": False}``.

    ``profiler`` attaches a :class:`repro.profile.ProfileRecorder` to the
    simulator before anything is scheduled; the run behaves identically
    (bit-identical trace digest) but attributes wall time per component.

    ``queue_backend`` selects the kernel's event-queue implementation
    (``"heap"`` or ``"calendar"``); both produce bit-identical traces.

    ``sanitize`` runs the whole scenario under the
    :mod:`repro.sim.simsan` runtime sanitizer; behavior (and the trace
    digest) is bit-identical, but determinism violations raise.

    ``gc_mode="freeze"`` freezes the post-setup heap and disables the
    cyclic collector inside the kernel's run loops (see
    :class:`~repro.sim.kernel.Simulator`); allocation behavior is
    GC-invariant, so the trace digest is bit-identical either way.
    """
    sim = Simulator(seed=seed, queue_backend=queue_backend,
                    sanitize=sanitize, gc_mode=gc_mode)
    if profiler is not None:
        sim.profiler = profiler
    diurnal = DiurnalRate(base_rate=1.0, peak_to_trough=peak_to_trough)
    population = build_population(
        n_functions=n_functions, total_rate=total_rate,
        opportunistic_fraction=opportunistic_fraction, diurnal=diurnal)

    # The Figure 4 client: a scaled 20M-calls-in-15-minutes burst on one
    # queue-triggered function, placed in the morning.  Small sweep
    # populations may not contain a qualifying function; then no spike.
    spiky_function = next(
        (l.spec.name for l in population.loads
         if l.spec.trigger is TriggerType.QUEUE and l.spec.is_delay_tolerant),
        None)
    if spiky_function is not None:
        burst_calls = total_rate * 900.0  # ~15 simulated minutes of mean load
        attach_spike(population, spiky_function,
                     figure4_spike(scale=burst_calls / 20.0e6,
                                   start_s=6 * 3600.0))

    machine = MachineSpec(cores=2, core_mips=500, threads=48)
    demand = estimate_demand_minstr(population, core_mips=machine.core_mips)
    topology = size_topology_for_utilization(
        demand, target_utilization=target_utilization, n_regions=n_regions,
        machine_spec=machine)

    services = ServiceRegistry()
    build_tao_stack(sim, services, tao_capacity_rps=1.0e5,
                    wtcache_capacity_rps=1.0e5, kvstore_capacity_rps=1.0e5)

    params = params_override or default_dayrun_params()
    if overrides:
        params = dataclasses.replace(params, **overrides)
    platform = XFaaS(sim, topology, params, services=services)
    for spec in population.specs:
        platform.register_function(spec)
    if spiky_function is not None:
        # The spiky client goes to the spiky submitter pool (§4.2).
        platform.register_spiky_client(
            platform.spec(spiky_function).team)

    # The arrival stream materializes batches directly into unpinned
    # arena slots — submit_stream is draw-for-draw identical to
    # submit(spec.name, ...) but recycles each slot on terminalization.
    ArrivalGenerator(sim, population, platform.submit_stream,
                     tick_s=20.0, stop_at=horizon_s)
    sim.run_until(horizon_s)
    return DayRun(sim=sim, platform=platform, population=population,
                  spiky_function=spiky_function, horizon_s=horizon_s,
                  n_regions=n_regions)


def build_fleetrun(n_workers: int, seed: int = 7,
                   total_rate: float = 30.0,
                   horizon_s: float = 600.0,
                   n_functions: int = 40, n_regions: int = 4,
                   opportunistic_fraction: float = 0.5,
                   queue_backend: Optional[str] = None,
                   overrides: Optional[dict] = None,
                   run_sim: bool = True,
                   sanitize: bool = False,
                   gc_mode: Optional[str] = None) -> DayRun:
    """Build and run a dayrun slice over an *explicit-size* worker fleet.

    The scale-ladder companion to :func:`build_dayrun`: the workload
    (arrival mix, scheduler cadences, controllers) is held fixed while
    ``n_workers`` sets the fleet size directly — flat capacity profile,
    ``n_workers // n_regions`` workers per region.  Because per-event
    work is fleet-size-independent after the struct-of-arrays refactor,
    events/sec across rungs of ``n_workers`` measures exactly the
    fleet-scaling property (``benchmarks/bench_scale.py``).

    ``run_sim=False`` returns before ``sim.run_until`` so a benchmark
    can time fleet construction and event processing separately — the
    caller runs ``run.sim.run_until(run.horizon_s)`` itself.
    """
    if n_workers < n_regions:
        raise ValueError(
            f"n_workers={n_workers} must be >= n_regions={n_regions}")
    sim = Simulator(seed=seed, queue_backend=queue_backend,
                    sanitize=sanitize, gc_mode=gc_mode)
    diurnal = DiurnalRate(base_rate=1.0, peak_to_trough=4.3)
    population = build_population(
        n_functions=n_functions, total_rate=total_rate,
        opportunistic_fraction=opportunistic_fraction, diurnal=diurnal)

    machine = MachineSpec(cores=2, core_mips=500, threads=48)
    per_region = max(1, n_workers // n_regions)
    topology = build_topology(
        n_regions=n_regions, workers_per_unit=per_region,
        relative_capacity=[1.0] * n_regions, machine_spec=machine)

    services = ServiceRegistry()
    build_tao_stack(sim, services, tao_capacity_rps=1.0e5,
                    wtcache_capacity_rps=1.0e5, kvstore_capacity_rps=1.0e5)

    params = default_dayrun_params()
    if overrides:
        params = dataclasses.replace(params, **overrides)
    platform = XFaaS(sim, topology, params, services=services)
    for spec in population.specs:
        platform.register_function(spec)

    ArrivalGenerator(sim, population, platform.submit_stream,
                     tick_s=20.0, stop_at=horizon_s)
    if run_sim:
        sim.run_until(horizon_s)
    return DayRun(sim=sim, platform=platform, population=population,
                  spiky_function=None, horizon_s=horizon_s,
                  n_regions=n_regions)


def summarize_run(run: DayRun) -> dict:
    """Headline scalar statistics of one run, JSON/pickle-friendly.

    These are the per-run values the sweep aggregator averages across
    seeds into confidence intervals (Fig 7 fleet utilization, completion
    latency percentiles, throughput accounting).
    """
    platform, horizon = run.platform, run.horizon_s
    warmup = min(3600.0, horizon / 4)
    fleet = [v for _, v in fleet_utilization_series(
        platform, warmup, horizon, min(600.0, max(horizon / 10, 1.0)))]
    summary = {
        "submitted": platform.submitted_count,
        "completed": platform.completed_count(),
        "backlog": platform.pending_backlog(),
        "throttled": (platform.metrics.counter("calls.throttled").total
                      if platform.metrics.has_counter("calls.throttled")
                      else 0.0),
        "events_executed": run.sim.events_executed,
        "fleet_util_mean": statistics.mean(fleet) if fleet else 0.0,
    }
    if platform.metrics.has_distribution("latency.completion"):
        lat = platform.metrics.distribution("latency.completion")
        if len(lat):
            summary["latency_p50_s"] = lat.percentile(50)
            summary["latency_p95_s"] = lat.percentile(95)
            summary["latency_p99_s"] = lat.percentile(99)
    if platform.metrics.has_distribution("latency.queueing"):
        qd = platform.metrics.distribution("latency.queueing")
        if len(qd):
            summary["queueing_p50_s"] = qd.percentile(50)
            summary["queueing_p95_s"] = qd.percentile(95)
    return summary


#: Scenario name -> builder, the dispatch table used by sweep workers.
#: Builders accept ``build_dayrun``-style keyword arguments and return a
#: :class:`DayRun`.
SCENARIOS: Dict[str, Callable[..., DayRun]] = {
    "dayrun": build_dayrun,
    "fleetrun": build_fleetrun,
}
