"""Inter-shard messages for the conservative parallel runner.

Every cross-region interaction in parallel mode — RIM report broadcast,
remote DurableQ polls and their responses, ACK/NACK/lease traffic, and
cross-region KV-store deletes — travels as a :class:`ShardMessage`.
Messages are timestamped with their *delivery* time (send time plus the
modelled one-way network latency, which is never below the topology's
lookahead), collected at window barriers, merged by the coordinator in
the canonical order ``(deliver_at, src_region, src_seq)``, and injected
into the destination shard's kernel strictly before their delivery
window runs.

The canonical order is what makes an N-shard run bit-identical to the
1-shard run: within one source region, ``src_seq`` increases in
emission order (region causality), and emission order per region is
shard-grouping-invariant; across regions, ties at the same delivery
instant break on the region name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Message kinds understood by :meth:`ShardPlatform.handle_message`.
KIND_RIM_REPORT = "rim_report"
KIND_DQ_POLL_REQ = "dq_poll_req"
KIND_DQ_POLL_RESP = "dq_poll_resp"
KIND_DQ_ACK = "dq_ack"
KIND_DQ_NACK = "dq_nack"
KIND_DQ_EXTEND = "dq_extend"
KIND_KV_DELETE = "kv_delete"


@dataclass(frozen=True)
class ShardMessage:
    """One timestamped inter-shard (really inter-*region*) message.

    Addressed to a *region*, not a shard: the coordinator maps regions
    to shards, so the wire format never depends on how regions were
    grouped — the prerequisite for shard-count-invariant execution.
    The payload is a tuple of primitives (picklable for the spawn
    runner, cheap to compare in tests).
    """

    deliver_at: float
    src_region: str
    src_seq: int
    dest_region: str
    kind: str
    payload: Tuple[Any, ...]

    def sort_key(self) -> Tuple[float, str, int]:
        """The coordinator's canonical merge key."""
        return (self.deliver_at, self.src_region, self.src_seq)


def serialize_call(call: Any) -> Tuple[Any, ...]:
    """Flatten a ``FunctionCall`` for a cross-shard poll response.

    Only submission-time fields plus the at-least-once bookkeeping
    (``attempts``) and the pre-sampled resources cross the boundary;
    execution-time fields are filled in by the receiving scheduler.
    """
    return (call.spec.name, call.submit_time, call.start_time,
            call.region_submitted, call.source_level, call.args_size_kb,
            call.call_id, call.attempts, call.durableq_region,
            call.resources, call.args_spilled)


def rehydrate_call(data: Tuple[Any, ...], specs: Dict[str, Any],
                   arena: Any = None) -> Any:
    """Rebuild a ``FunctionCall`` from :func:`serialize_call` output.

    ``specs`` is the receiving shard's function registry — every shard
    replays the full (replicated) registration stream, so the spec is
    always present.  The call lands in ``BUFFERED`` state, exactly
    where :meth:`DurableQ.poll` leaves a locally leased call.

    When the receiving shard passes its ``arena``, the copy lands in an
    *unpinned* slot there, recycled when the execution terminalizes
    (ACK release) or the copy is abandoned (remote NACK).
    """
    from ..core.call import CallState, FunctionCall
    (spec_name, submit_time, start_time, region_submitted, source_level,
     args_size_kb, call_id, attempts, durableq_region, resources,
     args_spilled) = data
    call = FunctionCall(spec=specs[spec_name], submit_time=submit_time,
                        start_time=start_time,
                        region_submitted=region_submitted,
                        source_level=source_level,
                        args_size_kb=args_size_kb, call_id=call_id,
                        state=CallState.BUFFERED, attempts=attempts,
                        durableq_region=durableq_region,
                        resources=resources, args_spilled=args_spilled,
                        arena=arena, pinned=arena is None)
    return call
