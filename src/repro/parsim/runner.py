"""Conservative bounded-lag coordinator for region-sharded runs.

The runner advances every shard in lockstep windows of width Δ = the
topology's **lookahead** (minimum cross-region network latency).  The
conservative invariant: any message a shard emits while executing the
window ``(W−Δ, W]`` has delivery time ``t + latency ≥ t + Δ > W`` —
strictly beyond the window — so collecting outboxes only at barriers
never delivers a message into a shard's past.

At each barrier the coordinator merges all outboxes in the canonical
order ``(deliver_at, src_region, src_seq)`` and injects each shard's
due messages before the next window runs.  Injection order fixes the
kernel's same-time tiebreak, which is why an N-shard run is
bit-identical to the 1-shard run of the *same machinery* (structural
parity — see DESIGN.md §7).

Empty windows are skipped: the next barrier jumps to the window
containing ``min(every shard's next event, every undelivered message)``.
Skipping is safe because every event in the skipped span lies at or
after that minimum, so nothing it emits can be due before the jumped-to
window's start plus Δ.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.recorder import MetricsRegistry
from ..workloads.trace import TraceLog
from .messages import ShardMessage
from .platform import build_shard, build_workload
from .spec import ParsimSpec, partition_regions

#: Tolerance for the window-index arithmetic: a candidate event time is
#: mapped to its window with ``ceil(t/Δ - _EPS)`` so a time sitting
#: exactly on a barrier (t == k·Δ) lands in window k, not k+1.
_EPS = 1e-9


@dataclass
class ParsimResult:
    """Outcome of one parallel (or degenerate serial) run."""

    spec: ParsimSpec
    #: Order-independent digest over the merged trace multiset.
    digest: str
    metrics: MetricsRegistry
    submitted: int
    throttled: int
    completed: int
    backlog: int
    events_executed: int
    #: Shards actually run (== 1 after a fallback).
    n_shards: int
    #: Why fewer shards ran than requested (None when honoured).
    fallback_reason: Optional[str] = None
    #: Barrier synchronizations performed (skipped windows excluded).
    barriers: int = 0
    #: Cross-shard messages exchanged.
    messages_exchanged: int = 0
    owned_regions: List[List[str]] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "submitted": self.submitted,
            "throttled": self.throttled,
            "completed": self.completed,
            "backlog": self.backlog,
            "events_executed": self.events_executed,
            "n_shards": self.n_shards,
            "fallback_reason": self.fallback_reason,
            "barriers": self.barriers,
            "messages_exchanged": self.messages_exchanged,
        }


class _LocalShard:
    """In-process shard driver (serial mode, parity tests)."""

    def __init__(self, spec: ParsimSpec, index: int) -> None:
        self.platform = build_shard(spec, index)
        self._reply: Optional[Tuple[List[ShardMessage],
                                    Optional[float]]] = None

    def advance_send(self, window_end: float,
                     messages: List[ShardMessage]) -> None:
        self.platform.advance(window_end, messages)
        self._reply = (self.platform.drain_outbox(),
                       self.platform.next_event_time())

    def advance_recv(self) -> Tuple[List[ShardMessage], Optional[float]]:
        reply, self._reply = self._reply, None
        assert reply is not None
        return reply

    def finish(self) -> Dict[str, Any]:
        return self.platform.finish()

    def close(self) -> None:
        pass


def _shard_worker(conn, spec: ParsimSpec, index: int) -> None:
    """Child-process entry point (spawn start method)."""
    platform = build_shard(spec, index)
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "advance":
                _, window_end, messages = msg
                platform.advance(window_end, messages)
                conn.send((platform.drain_outbox(),
                           platform.next_event_time()))
            elif msg[0] == "finish":
                conn.send(platform.finish())
                return
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown command {msg[0]!r}")
    finally:
        conn.close()


class _ProcShard:
    """Worker-process shard driver (spawn; same protocol as _LocalShard)."""

    def __init__(self, ctx, spec: ParsimSpec, index: int) -> None:
        self._conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_shard_worker, args=(child, spec, index), daemon=True)
        self.process.start()
        child.close()

    def advance_send(self, window_end: float,
                     messages: List[ShardMessage]) -> None:
        self._conn.send(("advance", window_end, messages))

    def advance_recv(self) -> Tuple[List[ShardMessage], Optional[float]]:
        return self._conn.recv()

    def finish(self) -> Dict[str, Any]:
        self._conn.send(("finish",))
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()
        self.process.join(timeout=30.0)
        if self.process.is_alive():  # pragma: no cover - hung child
            self.process.terminate()


def run_parsim(spec: ParsimSpec,
               force_in_process: bool = False) -> ParsimResult:
    """Run one :class:`ParsimSpec` to its horizon and merge the shards.

    ``force_in_process`` runs every shard in this process (sequential
    barrier execution) — bit-identical to the spawn runner, used by the
    parity tests and on machines without usable multiprocessing.
    """
    _population, _spiky, topology = build_workload(spec)
    region_names = topology.region_names
    n_shards = spec.effective_shards
    fallback_reason = None
    if spec.n_shards > 1 and len(region_names) < 2:
        # Degenerate: a single region's lookahead is its intra-region
        # latency — there is no cross-region slack to hide a window
        # behind, so parallelism is refused and the run stays serial.
        n_shards = 1
        fallback_reason = ("single-region topology: lookahead degenerates "
                           "to intra-region latency; running serially")
    elif spec.n_shards > spec.n_regions:
        fallback_reason = (
            f"clamped to one shard per region "
            f"({spec.n_regions} regions)")

    lookahead = topology.lookahead()
    if lookahead <= 0:  # pragma: no cover - NetworkModel forbids this
        raise ValueError("topology lookahead must be positive")
    groups = partition_regions(region_names, n_shards)
    shard_of = {r: i for i, group in enumerate(groups) for r in group}

    use_processes = (n_shards > 1 and not force_in_process)
    if use_processes:
        ctx = mp.get_context("spawn")
        shards: List[Any] = [_ProcShard(ctx, spec, i)
                             for i in range(n_shards)]
    else:
        shards = [_LocalShard(spec, i) for i in range(n_shards)]

    horizon = spec.horizon_s
    #: Undelivered messages, kept sorted in canonical order.
    pending: List[ShardMessage] = []
    barriers = 0
    messages_exchanged = 0
    k = 1  # windows tracked by integer index: W = k·Δ, never accumulated
    final_k = max(1, math.ceil(horizon / lookahead - _EPS))

    try:
        while True:
            window_end = min(k * lookahead, horizon)
            due: List[List[ShardMessage]] = [[] for _ in range(n_shards)]
            n_due = 0
            for msg in pending:
                if msg.deliver_at <= window_end:
                    due[shard_of[msg.dest_region]].append(msg)
                    n_due += 1
            if n_due:
                pending = [m for m in pending
                           if m.deliver_at > window_end]
            for shard, inbox in zip(shards, due):
                shard.advance_send(window_end, inbox)
            next_times: List[float] = []
            for shard in shards:
                outbox, next_time = shard.advance_recv()
                if outbox:
                    messages_exchanged += len(outbox)
                    pending.extend(outbox)
                if next_time is not None:
                    next_times.append(next_time)
            barriers += 1
            if window_end >= horizon:
                break
            if pending:
                pending.sort(key=ShardMessage.sort_key)
                next_times.append(pending[0].deliver_at)
            if not next_times:
                # Nothing anywhere: jump straight to the horizon window.
                k = final_k
                continue
            candidate = min(next_times)
            if candidate >= horizon:
                k = final_k
                continue
            # Skip empty windows: everything in the skipped span is at
            # t >= candidate, so its messages are due after the window
            # containing candidate — injection stays strictly future.
            k = max(k + 1, math.ceil(candidate / lookahead - _EPS))

        finishes = [shard.finish() for shard in shards]
    finally:
        for shard in shards:
            shard.close()

    digest = TraceLog.combine_canonical(
        [tuple(f["canonical_partial"]) for f in finishes])
    metrics = MetricsRegistry.from_snapshot(finishes[0]["metrics"])
    for f in finishes[1:]:
        metrics.merge(f["metrics"])
    return ParsimResult(
        spec=spec,
        digest=digest,
        metrics=metrics,
        submitted=sum(f["submitted"] for f in finishes),
        throttled=sum(f["throttled"] for f in finishes),
        completed=sum(f["completed"] for f in finishes),
        backlog=sum(f["backlog"] for f in finishes),
        events_executed=sum(f["events_executed"] for f in finishes),
        n_shards=n_shards,
        fallback_reason=fallback_reason,
        barriers=barriers,
        messages_exchanged=messages_exchanged,
        owned_regions=[list(f["owned_regions"]) for f in finishes],
    )


def available_cpus() -> int:
    """CPUs usable by this process (cgroup/affinity aware when possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
