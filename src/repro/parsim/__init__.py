"""Region-sharded conservative parallel execution (bounded-lag windows).

Public surface::

    from repro.parsim import ParsimSpec, run_parsim

    result = run_parsim(ParsimSpec(scenario="dayrun", n_shards=4))
    result.digest       # bit-identical to the n_shards=1 digest

Shards own contiguous groups of regions; each runs its own kernel and
advances in lockstep windows of the topology lookahead, exchanging
cross-region interactions as timestamped messages at window barriers
(DESIGN.md §7).
"""

from .messages import ShardMessage
from .platform import RemoteRegionHandle, ShardPlatform, build_shard, build_workload
from .runner import ParsimResult, available_cpus, run_parsim
from .spec import PARSIM_SCENARIOS, ParsimSpec, partition_regions, shard_of_region

__all__ = [
    "PARSIM_SCENARIOS",
    "ParsimResult",
    "ParsimSpec",
    "RemoteRegionHandle",
    "ShardMessage",
    "ShardPlatform",
    "available_cpus",
    "build_shard",
    "build_workload",
    "partition_regions",
    "run_parsim",
    "shard_of_region",
]
