"""One shard of a region-sharded parallel simulation.

A :class:`ShardPlatform` hosts the *data plane* (DurableQs, schedulers,
workers, submitters, per-region downstream stacks) for a contiguous
group of regions, plus a *replicated control plane* — config store,
call-id allocator, client-region chooser, arrival replay, GTC and
Utilization Controller — that every shard runs identically so no
control decision ever needs cross-shard coordination.

Determinism rules (the reason an N-shard run is bit-identical to the
1-shard run):

* **Replicated draws.**  Every shard replays the *full* arrival stream
  and pre-samples every call's resources at submission, consuming the
  ``arrivals`` / ``client-region`` / ``resources/*`` RNG streams
  identically everywhere; only calls submitted to an *owned* region
  are materialized.
* **Region-qualified draws.**  Every other stream is qualified by the
  region that draws from it (scheduler jitter, config-refresh jitter,
  DurableQ sweeps, WorkerLB/QueueLB choices, downstream services), so
  a region's sequence never depends on which other regions share its
  kernel.
* **Region-addressed messages.**  Cross-**region** interactions go
  through the mailbox even when both regions live on the same shard
  — structurally identical under every shard grouping.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cluster.machine import MachineSpec
from ..cluster.topology import (
    Topology,
    build_topology,
    size_topology_for_utilization,
)
from ..core.call import CallArena, CallIdAllocator, CallOutcome, FunctionCall
from ..core.config import ConfigStore
from ..core.congestion import CongestionController
from ..core.durableq import DurableQ
from ..core.gtc import GlobalTrafficConductor
from ..core.isolation import NamespaceRegistry
from ..core.kvstore import DistributedKVStore
from ..core.locality import LocalityOptimizer
from ..core.platform import PlatformParams
from ..core.queuelb import QueueLB
from ..core.ratelimiter import CentralRateLimiter, ClientRateLimiter
from ..core.scheduler import S_MULTIPLIER_KEY, Scheduler
from ..core.submitter import Submitter, SubmitterFrontend
from ..core.utilization import UtilizationController
from ..core.worker import Worker
from ..core.workerarrays import WorkerArrays
from ..core.workerlb import WorkerLB
from ..downstream.service import ServiceRegistry
from ..downstream.tao import build_tao_stack
from ..metrics.recorder import MetricsRegistry
from ..metrics.timeseries import Counter
from ..scenarios import default_dayrun_params
from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from ..sim.simsan import region_map
from ..workloads.generator import (
    ArrivalGenerator,
    attach_spike,
    build_population,
    estimate_demand_minstr,
)
from ..workloads.diurnal import DiurnalRate
from ..workloads.spec import FunctionSpec, QuotaType, TriggerType
from ..workloads.spikes import figure4_spike
from ..workloads.trace import TraceLog
from .messages import (
    KIND_DQ_ACK,
    KIND_DQ_EXTEND,
    KIND_DQ_NACK,
    KIND_DQ_POLL_REQ,
    KIND_DQ_POLL_RESP,
    KIND_KV_DELETE,
    KIND_RIM_REPORT,
    ShardMessage,
    rehydrate_call,
    serialize_call,
)
from .reportrim import ReportRim
from .spec import ParsimSpec, partition_regions


class RemoteRegionHandle:
    """A scheduler's stand-in for another region's DurableQ shard.

    Duck-types the scheduler-facing :class:`DurableQ` surface:
    ``poll`` emits a request message and returns nothing now (leased
    calls arrive later via :meth:`Scheduler.accept_remote`);
    ``ack``/``nack``/``extend_lease`` are one-way messages to the
    queue's owning region.  The round trip (2 × one-way latency,
    ~0.1 s) is far inside the 120 s lease timeout.
    """

    __slots__ = ("platform", "scheduler_region", "region", "dq_index",
                 "latency_s", "name")

    def __init__(self, platform: "ShardPlatform", scheduler_region: str,
                 dq_region: str, dq_index: int, latency_s: float) -> None:
        self.platform = platform
        self.scheduler_region = scheduler_region
        self.region = dq_region
        self.dq_index = dq_index
        self.latency_s = latency_s
        self.name = f"remote-dq/{dq_region}/{dq_index}"

    def poll(self, scheduler_id: str, max_items: int,
             skip=frozenset()) -> List[FunctionCall]:
        self.platform.send(
            self.scheduler_region, self.region, KIND_DQ_POLL_REQ,
            (self.region, self.dq_index, self.scheduler_region,
             scheduler_id, max_items, tuple(sorted(skip))),
            self.latency_s)
        return []

    def ack(self, call: FunctionCall) -> None:
        self.platform.send(
            self.scheduler_region, self.region, KIND_DQ_ACK,
            (self.region, self.dq_index, call.call_id), self.latency_s)

    def nack(self, call: FunctionCall, retry_delay_s: float = 0.0) -> None:
        self.platform.send(
            self.scheduler_region, self.region, KIND_DQ_NACK,
            (self.region, self.dq_index, call.call_id, retry_delay_s),
            self.latency_s)
        # The local rehydrated copy is abandoned here — the owning
        # region re-enqueues *its* record on NACK; recycle the copy.
        call.arena.release(call.slot, call.gen)

    def extend_lease(self, call_id: int) -> None:
        self.platform.send(
            self.scheduler_region, self.region, KIND_DQ_EXTEND,
            (self.region, self.dq_index, call_id), self.latency_s)

    # Rim-style accounting surface (never counted for foreign regions).
    def ready_count(self, now: Optional[float] = None) -> int:
        return 0

    @property
    def pending_count(self) -> int:
        return 0

    @property
    def leased_count(self) -> int:
        return 0


class ShardPlatform:
    """XFaaS wiring for one shard's regions plus the replicated plane."""

    def __init__(self, sim: Simulator, spec: ParsimSpec,
                 topology: Topology, population: Any,
                 spiky_function: Optional[str],
                 params: PlatformParams,
                 owned_regions: List[str]) -> None:
        self.sim = sim
        self.spec = spec
        self.topology = topology
        self.population = population
        self.params = params
        self.owned_regions = sorted(owned_regions)
        self._owned_set = frozenset(self.owned_regions)
        self.all_regions = topology.region_names

        # simsan (opt-in): this shard owns exactly ``owned_regions`` —
        # restrict the sanitizer so any direct touch of a foreign
        # region's map entry or RNG stream raises.  Replicated streams
        # (arrivals, client-region, resources/*) name no region and
        # stay unrestricted by construction.
        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.register_regions(self.all_regions)
            sanitizer.restrict(self.owned_regions)
        network = topology.network
        self.network = network
        self._report_delay = network.max_latency()

        self.metrics = MetricsRegistry()
        self.traces = TraceLog()
        self._call_id_allocator = CallIdAllocator()
        #: Per-shard call arena — every shard stores only the calls it
        #: materializes (owned arrivals + rehydrated remote leases), so
        #: shard memory scales with owned in-flight calls.
        self.arena = CallArena()
        self.namespaces = NamespaceRegistry()
        self.config = ConfigStore(sim, params.config_propagation_s)
        self.kvstore = DistributedKVStore(sim)
        self._specs: Dict[str, FunctionSpec] = {}
        self._outbox: List[ShardMessage] = []
        self._out_seq = 0

        ns = params.namespace
        self.namespaces.create(ns)
        shares = topology.capacity_share(ns)
        self._core_mips = topology.regions[0].machine_spec.core_mips

        self._calls_received = self.metrics.bind_counter("calls.received")
        self._calls_executed = self.metrics.bind_counter("calls.executed")
        self._calls_throttled = self.metrics.bind_counter("calls.throttled")
        self._cpu_reserved = self.metrics.bind_counter("cpu.reserved")
        self._cpu_opportunistic = self.metrics.bind_counter(
            "cpu.opportunistic")
        self._queueing_latency = self.metrics.bind_distribution(
            "latency.queueing")
        self._completion_latency = self.metrics.bind_distribution(
            "latency.completion")
        self._backpressure_counters: Dict[str, Counter] = {}
        self._resource_streams: Dict[str, Any] = {}
        self._client_region_chooser: Optional[Callable[[], str]] = None

        # --- Replicated control plane ---------------------------------
        self.sampler_hub = SamplerHub(sim)
        self.rim = ReportRim(
            sim, self.metrics, self.all_regions, self.owned_regions,
            self._broadcast_report, params.rim_sample_interval_s,
            timers=self.sampler_hub,
            fleet_gauge_owner=self.all_regions[0] in self._owned_set)
        self.gtc = GlobalTrafficConductor(
            sim, self.rim, self.config, network, params.gtc,
            enabled=params.global_dispatch, timers=self.sampler_hub)
        self.utilization_controller = UtilizationController(
            sim, self.rim, self.config, params.utilization,
            timers=self.sampler_hub)
        if not params.time_shifting:
            self.config.publish(S_MULTIPLIER_KEY, 1.0e9)

        # --- Partitioned data plane (owned regions, sorted order) -----
        self.durableqs_by_region: Dict[str, List[DurableQ]] = \
            region_map(sanitizer, "durableqs_by_region")
        self.workers_by_region: Dict[str, List[Worker]] = \
            region_map(sanitizer, "workers_by_region")
        self.workerlbs: Dict[str, WorkerLB] = \
            region_map(sanitizer, "workerlbs")
        self.schedulers: Dict[str, Scheduler] = \
            region_map(sanitizer, "schedulers")
        self.queuelbs: Dict[str, QueueLB] = \
            region_map(sanitizer, "queuelbs")
        self.frontends: Dict[str, SubmitterFrontend] = \
            region_map(sanitizer, "frontends")
        self.rate_limiters: Dict[str, CentralRateLimiter] = \
            region_map(sanitizer, "rate_limiters")
        self.client_limiters: Dict[str, ClientRateLimiter] = \
            region_map(sanitizer, "client_limiters")
        self.congestion_by_region: Dict[str, CongestionController] = \
            region_map(sanitizer, "congestion_by_region")
        self.locality_by_region: Dict[str, LocalityOptimizer] = \
            region_map(sanitizer, "locality_by_region")
        self.services_by_region: Dict[str, ServiceRegistry] = \
            region_map(sanitizer, "services_by_region")
        self._quota_share: Dict[str, float] = {
            r: max(shares.get(r, 0.0), 1e-9) for r in self.all_regions}
        self._remote_handles: Dict[Tuple[str, str, int],
                                   RemoteRegionHandle] = {}

        n_dq = params.durableq_shards_per_region
        for r in self.owned_regions:
            self.durableqs_by_region[r] = [
                DurableQ(sim, name=f"dq/{r}/{i}", region=r,
                         jitter_stream=f"dq-sweep/{r}/{i}")
                for i in range(n_dq)]

        for r in self.owned_regions:
            self._build_region(r, ns, n_dq)

        # --- Start controllers & samplers -----------------------------
        self.rim.start()
        self.gtc.start()
        if params.time_shifting:
            self.utilization_controller.start()
        for r in self.owned_regions:
            self.locality_by_region[r].start()
            congestion = self.congestion_by_region[r]
            self.sampler_hub.every(
                params.congestion.adjust_window_s,
                lambda c=congestion: c.adjust(sim.now))
            self.sampler_hub.every(
                params.distinct_window_s,
                lambda region=r: self._sample_distinct_functions(region),
                start=params.distinct_window_s)
            if params.memory_sample_interval_s > 0:
                self.sampler_hub.every(
                    params.memory_sample_interval_s,
                    lambda region=r: self._sample_memory(region))

        self.submitted_count = 0
        self.throttled_count = 0

        # --- Replicated registration + arrival replay (always last) ---
        for fn_spec in population.specs:
            self.register_function(fn_spec)
        if spiky_function is not None:
            team = self._specs[spiky_function].team
            for frontend in self.frontends.values():
                frontend.register_spiky_client(team)
        self.arrivals = ArrivalGenerator(
            sim, population, self._replay_submit, tick_s=20.0,
            stop_at=spec.horizon_s)

    # ------------------------------------------------------------------
    # Per-region data-plane construction
    # ------------------------------------------------------------------
    def _build_region(self, r: str, ns: str, n_dq: int) -> None:
        sim = self.sim
        params = self.params
        share = self._quota_share[r]
        region = self.topology.region(r)
        machine = region.machine_spec

        self.rate_limiters[r] = CentralRateLimiter()
        self.client_limiters[r] = ClientRateLimiter(
            default_rps=max(1000.0 * share, 1.0))
        self.congestion_by_region[r] = CongestionController(params.congestion)
        self.locality_by_region[r] = LocalityOptimizer(
            sim, self.config, params.locality,
            enabled=params.locality_groups, namespace=ns,
            timers=self.sampler_hub,
            config_key=f"locality/assignment/{r}")
        services = ServiceRegistry()
        # One §5.5 stack per region, its share of the global capacity;
        # downstream calls stay region-local (no cross-shard traffic).
        n_regions = len(self.all_regions)
        build_tao_stack(
            sim, services,
            tao_capacity_rps=1.0e5 / n_regions,
            wtcache_capacity_rps=1.0e5 / n_regions,
            kvstore_capacity_rps=1.0e5 / n_regions,
            rng_prefix=f"{r}/")
        self.services_by_region[r] = services
        locality = self.locality_by_region[r]

        arrays = WorkerArrays()
        gateway = self._make_gateway(r)
        workers = []
        for w in range(region.workers_for(ns)):
            worker = Worker(
                sim, name=f"{r}/{ns}/w{w:03d}", region=r, namespace=ns,
                machine=machine, params=params.worker,
                jit_params=params.jit,
                downstream_gateway=gateway, arrays=arrays)
            locality.register_worker(worker)
            workers.append(worker)
        self.workers_by_region[r] = workers
        self.rim.register_workers(r, workers)
        self.rim.register_durableqs(r, self.durableqs_by_region[r])

        workerlb = WorkerLB(
            sim, r, workers,
            group_of_function=locality.group_of,
            n_groups_fn=lambda loc=locality: loc.n_groups,
            group_epoch_fn=lambda loc=locality: loc.group_epoch)
        self.workerlbs[r] = workerlb

        # The scheduler polls its *own* region's queues synchronously;
        # every other region — owned by this shard or not — goes through
        # the mailbox, so the structure is shard-grouping-invariant.
        dq_map: Dict[str, List[Any]] = {}
        for r2 in self.all_regions:
            if r2 == r:
                dq_map[r2] = list(self.durableqs_by_region[r])
            else:
                latency = self.network.latency(r, r2)
                handles = []
                for i in range(n_dq):
                    handle = RemoteRegionHandle(self, r, r2, i, latency)
                    self._remote_handles[(r, r2, i)] = handle
                    handles.append(handle)
                dq_map[r2] = handles

        scheduler = Scheduler(
            sim, r, dq_map, workerlb,
            self.rate_limiters[r], self.congestion_by_region[r],
            self.config, params.scheduler, on_done=self._on_done,
            timers=self.sampler_hub,
            jitter_stream=f"config-jitter/{r}/sched")
        self.schedulers[r] = scheduler
        self.rim.register_scheduler(r, scheduler)
        for worker in workers:
            worker.on_finish = scheduler.on_call_finished

        queuelb = QueueLB(sim, r, {r: self.durableqs_by_region[r]},
                          self.config,
                          jitter_stream=f"config-jitter/{r}/queuelb")
        self.queuelbs[r] = queuelb
        normal = Submitter(sim, r, queuelb, self.client_limiters[r],
                           params.submitter, pool="normal",
                           on_throttle=self._on_throttle,
                           kvstore=self.kvstore)
        spiky = Submitter(sim, r, queuelb, self.client_limiters[r],
                          params.submitter, pool="spiky",
                          on_throttle=self._on_throttle,
                          kvstore=self.kvstore)
        self.frontends[r] = SubmitterFrontend(normal, spiky)

    # ------------------------------------------------------------------
    # Replicated registration / submission
    # ------------------------------------------------------------------
    def register_function(self, spec: FunctionSpec) -> None:
        if spec.name in self._specs:
            return
        self._specs[spec.name] = spec
        self.namespaces.assign(spec)
        expected_cost = spec.profile.cpu_minstr.mean
        for r in self.owned_regions:
            # §4.6.1's global quota, split across regions by capacity
            # share — region r's limiter replica enforces its slice, so
            # the fleet-wide rate stays at the owner-set quota without
            # any cross-shard token traffic.
            scaled = dataclasses.replace(
                spec, quota_minstr_per_s=(spec.quota_minstr_per_s *
                                          self._quota_share[r]))
            self.rate_limiters[r].register(scaled, expected_cost)
            self.congestion_by_region[r].register(spec)
            self.locality_by_region[r].register_function(spec)

    def _pick_client_region(self) -> str:
        chooser = self._client_region_chooser
        if chooser is None:
            shares = self.topology.capacity_share(self.params.namespace)
            regions = sorted(shares)
            chooser = self.sim.rng.stream("client-region").weighted_chooser(
                regions, [max(shares[r], 1e-9) for r in regions])
            self._client_region_chooser = chooser
        return chooser()

    def _replay_submit(self, spec: FunctionSpec, start_delay_s: float) -> None:
        """Replicated arrival replay: draw everything, materialize owned.

        Every shard consumes the same ``client-region`` and
        ``resources/*`` draws for every arrival; only arrivals whose
        chosen region belongs to this shard become live calls.
        """
        region = self._pick_client_region()
        name = spec.name
        rng = self._resource_streams.get(name)
        if rng is None:
            rng = self._resource_streams[name] = \
                self.sim.rng.stream(  # simlint: disable=SL007 -- memo miss
                    f"resources/{name}")
        resources = spec.profile.sample(rng, self._core_mips)
        call_id = self._call_id_allocator.allocate()
        if region not in self._owned_set:
            return
        now = self.sim.now
        call = FunctionCall(spec=spec, submit_time=now,
                            start_time=now + start_delay_s,
                            region_submitted=region,
                            call_id=call_id, resources=resources,
                            arena=self.arena, pinned=False)
        self._calls_received.add(now)
        self.submitted_count += 1
        self.frontends[region].submit(call)

    # ------------------------------------------------------------------
    # Mailbox
    # ------------------------------------------------------------------
    def send(self, src_region: str, dest_region: str, kind: str,
             payload: Tuple[Any, ...], delay_s: float) -> None:
        """Queue an inter-region message for the next window barrier.

        ``delay_s`` is a modelled network latency and therefore never
        below the topology lookahead, which is what guarantees the
        delivery time falls strictly beyond the current window.
        """
        if self.sim.sanitizer is not None:
            # A shard may only *originate* messages from regions it
            # owns; forging a foreign source would desynchronize the
            # canonical (deliver_at, src_region, src_seq) merge order.
            self.sim.sanitizer.check_region(
                src_region, f"send({kind!r}) source")
        self._outbox.append(ShardMessage(
            deliver_at=self.sim.now + delay_s, src_region=src_region,
            src_seq=self._out_seq, dest_region=dest_region, kind=kind,
            payload=payload))
        self._out_seq += 1

    def _broadcast_report(self, region: str, report: Tuple) -> None:
        for dest in self.all_regions:
            self.send(region, dest, KIND_RIM_REPORT,
                      (region,) + tuple(report), self._report_delay)

    def handle_message(self, msg: ShardMessage) -> None:
        kind = msg.kind
        payload = msg.payload
        if kind == KIND_RIM_REPORT:
            self.rim.apply_report(payload[0], tuple(payload[1:]))
        elif kind == KIND_DQ_POLL_REQ:
            (dq_region, dq_index, sched_region, scheduler_id,
             budget, skip_names) = payload
            dq = self.durableqs_by_region[dq_region][dq_index]
            calls = dq.poll(scheduler_id, budget,
                            skip=frozenset(skip_names))
            if calls:
                self.send(dq_region, sched_region, KIND_DQ_POLL_RESP,
                          (dq_region, dq_index, sched_region,
                           tuple(serialize_call(c) for c in calls)),
                          self.network.latency(dq_region, sched_region))
        elif kind == KIND_DQ_POLL_RESP:
            dq_region, dq_index, sched_region, calls = payload
            handle = self._remote_handles[(sched_region, dq_region,
                                           dq_index)]
            scheduler = self.schedulers[sched_region]
            for data in calls:
                scheduler.accept_remote(
                    rehydrate_call(data, self._specs, self.arena), handle)
        elif kind == KIND_DQ_ACK:
            dq_region, dq_index, call_id = payload
            acked = self.durableqs_by_region[dq_region][dq_index] \
                .ack_by_id(call_id)
            if acked is not None:
                # The owner-side record is garbage once the executing
                # shard's ACK lands: recycle its slot.
                acked.arena.release(acked.slot, acked.gen)
        elif kind == KIND_DQ_NACK:
            dq_region, dq_index, call_id, retry_delay = payload
            self.durableqs_by_region[dq_region][dq_index].nack_by_id(
                call_id, retry_delay)
        elif kind == KIND_DQ_EXTEND:
            dq_region, dq_index, call_id = payload
            self.durableqs_by_region[dq_region][dq_index].extend_lease(
                call_id)
        elif kind == KIND_KV_DELETE:
            self.kvstore.delete(payload[0])
        else:
            raise ValueError(f"unknown shard message kind {kind!r}")

    # ------------------------------------------------------------------
    # Windowed execution (driven by the runner)
    # ------------------------------------------------------------------
    def advance(self, window_end: float,
                messages: List[ShardMessage]) -> None:
        """Inject this window's messages (canonical order), then run."""
        sim = self.sim
        for msg in messages:
            sim.inject(msg.deliver_at,
                       lambda m=msg: self.handle_message(m))
        sim.run_until(window_end)

    def drain_outbox(self) -> List[ShardMessage]:
        out, self._outbox = self._outbox, []
        return out

    def next_event_time(self) -> Optional[float]:
        return self.sim.next_event_time()

    # ------------------------------------------------------------------
    # Completion path
    # ------------------------------------------------------------------
    def _make_gateway(self, r: str) -> Callable[[FunctionCall], CallOutcome]:
        def invoke(call: FunctionCall) -> CallOutcome:
            outcome = CallOutcome.OK
            services = self.services_by_region[r]
            congestion = self.congestion_by_region[r]
            for service_name, n in call.spec.downstream:
                service = services.maybe_get(service_name)
                if service is None:
                    continue
                result = service.call(n, caller=call.function_name)
                if result.exceptions and self.params.aimd:
                    congestion.on_backpressure(
                        call.function_name, service_name, result.exceptions)
                if result.exceptions:
                    key = f"backpressure.{r}.{service_name}"
                    ctr = self._backpressure_counters.get(key)
                    if ctr is None:
                        ctr = self._backpressure_counters[key] = \
                            self.metrics.counter(  # simlint: disable=SL007 -- memo miss
                                key)
                    ctr.add(self.sim.now, result.exceptions)
                if result.failures:
                    outcome = CallOutcome.ERROR
            return outcome
        return invoke

    def _on_done(self, call: FunctionCall, outcome: CallOutcome) -> None:
        now = self.sim.now
        if call.args_spilled:
            # The spilled args live in the kvstore of the shard owning
            # the *submit* region; a cross-region finish routes the
            # delete through the mailbox (region-based rule, so the
            # delete time is shard-grouping-invariant).
            src = call.scheduler_region or call.region_submitted
            if call.region_submitted == src:
                self.kvstore.delete(f"args/{call.call_id}")
            else:
                self.send(src, call.region_submitted, KIND_KV_DELETE,
                          (f"args/{call.call_id}",),
                          self.network.latency(src, call.region_submitted))
        if outcome is CallOutcome.OK and call.dispatch_time is not None:
            self._calls_executed.add(call.dispatch_time)
            if call.resources is not None:
                cpu = call.resources[0]
                ctr = (self._cpu_reserved
                       if call.spec.quota_type is QuotaType.RESERVED
                       else self._cpu_opportunistic)
                ctr.add(call.dispatch_time, cpu)
            eligible = max(call.submit_time, call.start_time)
            self._queueing_latency.add(
                max(0.0, call.dispatch_time - eligible))
            self._completion_latency.add(now - call.submit_time)
        if self.params.collect_traces:
            self.traces.add_call(
                call, outcome.value if outcome else "unknown")
        # Terminalized on this shard: recycle the slot (the trace log
        # snapshotted above; nothing touches the view past this line).
        call.arena.release(call.slot, call.gen)

    def _on_throttle(self, call: FunctionCall) -> None:
        self.throttled_count += 1
        self._calls_throttled.add(self.sim.now)
        if self.params.collect_traces:
            self.traces.add_call(call, "throttled")
        call.arena.release(call.slot, call.gen)

    # ------------------------------------------------------------------
    # Periodic samplers (owned regions)
    # ------------------------------------------------------------------
    def _sample_distinct_functions(self, region: str) -> None:
        dist = self.metrics.distribution(
            "worker.distinct_functions_per_window")
        workers = self.workers_by_region[region]
        # Draining the window mutates each worker (same as core.platform).
        for worker in workers:  # simlint: disable=SL008 -- windows
            count = worker.take_distinct_functions_window()
            if worker.calls_started > 0:
                dist.add(count)

    def _sample_memory(self, region: str) -> None:
        now = self.sim.now
        dist = self.metrics.distribution("worker.memory_mb")
        workers = self.workers_by_region[region]
        # Fig 10 needs the full per-worker distribution, not an aggregate.
        for worker in workers:  # simlint: disable=SL008 -- Fig 10
            dist.add(worker.memory_in_use_mb)
        if region == self.all_regions[0]:
            if workers:
                self.metrics.gauge("worker.sample.memory_mb").set(
                    now, workers[0].memory_in_use_mb)

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def completed_count(self) -> int:
        return sum(s.completed_count for s in self.schedulers.values())

    def pending_backlog(self) -> int:
        backlog = 0
        for _r, shards in sorted(self.durableqs_by_region.items()):
            backlog += sum(q.ready_count() for q in shards)
        for _r, scheduler in sorted(self.schedulers.items()):
            backlog += scheduler.pending_demand
        return backlog

    def finish(self) -> Dict[str, Any]:
        """Summarize this shard for the coordinator (picklable)."""
        partial, count = self.traces.canonical_partial()
        return {
            "canonical_partial": (partial, count),
            "metrics": self.metrics.snapshot(),
            "submitted": self.submitted_count,
            "throttled": self.throttled_count,
            "completed": self.completed_count(),
            "backlog": self.pending_backlog(),
            "events_executed": self.sim.events_executed,
            "owned_regions": list(self.owned_regions),
        }


def build_workload(spec: ParsimSpec) -> Tuple[Any, Optional[str], Topology]:
    """Rebuild the scenario workload a :class:`ParsimSpec` describes.

    Returns ``(population, spiky_function, topology)``.  Deterministic
    in the spec alone: population construction draws only from
    sim-independent RNG streams, so every shard (and the coordinator)
    reconstructs the identical workload.  Mirrors
    :func:`repro.scenarios.build_dayrun` / ``build_fleetrun``.
    """
    diurnal = DiurnalRate(base_rate=1.0, peak_to_trough=spec.peak_to_trough)
    population = build_population(
        n_functions=spec.n_functions, total_rate=spec.total_rate,
        opportunistic_fraction=spec.opportunistic_fraction, diurnal=diurnal)
    machine = MachineSpec(cores=2, core_mips=500, threads=48)

    spiky_function = None
    if spec.scenario == "dayrun":
        spiky_function = next(
            (load.spec.name for load in population.loads
             if load.spec.trigger is TriggerType.QUEUE
             and load.spec.is_delay_tolerant),
            None)
        if spiky_function is not None:
            burst_calls = spec.total_rate * 900.0
            attach_spike(population, spiky_function,
                         figure4_spike(scale=burst_calls / 20.0e6,
                                       start_s=6 * 3600.0))
        demand = estimate_demand_minstr(population,
                                        core_mips=machine.core_mips)
        topology = size_topology_for_utilization(
            demand, target_utilization=spec.target_utilization,
            n_regions=spec.n_regions, machine_spec=machine)
    else:  # fleetrun
        if spec.n_workers < spec.n_regions:
            raise ValueError(
                f"n_workers={spec.n_workers} must be >= "
                f"n_regions={spec.n_regions}")
        per_region = max(1, spec.n_workers // spec.n_regions)
        topology = build_topology(
            n_regions=spec.n_regions, workers_per_unit=per_region,
            relative_capacity=[1.0] * spec.n_regions, machine_spec=machine)
    return population, spiky_function, topology


def build_shard(spec: ParsimSpec, shard_index: int) -> ShardPlatform:
    """Build one shard (its own kernel + platform) from a spec.

    Every shard rebuilds the *identical* workload — population, spike,
    topology — from the spec's primitives (the construction draws from
    sim-independent RNG streams), then wires only its own regions.
    """
    n_shards = spec.effective_shards
    if not 0 <= shard_index < n_shards:
        raise ValueError(
            f"shard_index {shard_index} out of range for {n_shards} shards")
    sim = Simulator(seed=spec.seed, queue_backend=spec.queue_backend,
                    sanitize=spec.sanitize)
    population, spiky_function, topology = build_workload(spec)
    params = default_dayrun_params()
    if params.collect_traces != spec.collect_traces:
        params = dataclasses.replace(params,
                                     collect_traces=spec.collect_traces)
    owned = partition_regions(topology.region_names, n_shards)[shard_index]
    return ShardPlatform(sim, spec, topology, population, spiky_function,
                         params, owned)
