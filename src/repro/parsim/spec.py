"""Spawn-safe run specification for region-sharded parallel simulation.

A :class:`ParsimSpec` carries everything a worker process needs to
rebuild its shard of the simulation: the scenario shape (mirroring
:mod:`repro.scenarios`), the seed, and the shard topology.  It is a
frozen dataclass of primitives — the same pattern as
:class:`repro.sweep.spec.RunSpec` — so the spawn start method can
pickle it into a fresh interpreter.

The region → shard mapping is *contiguous over the sorted region
names*: deterministic, balanced to within one region, and independent
of anything but ``(n_regions, n_shards)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

#: Scenarios parsim can shard.  Mirrors ``repro.scenarios.SCENARIOS``
#: but is its own table: parsim rebuilds the scenario *workload* inside
#: each shard and wires its own platform around it.
PARSIM_SCENARIOS = ("dayrun", "fleetrun")


@dataclass(frozen=True)
class ParsimSpec:
    """One parallel run, fully described by primitives."""

    scenario: str = "dayrun"
    seed: int = 7
    horizon_s: float = 900.0
    total_rate: float = 8.0
    n_functions: int = 60
    n_regions: int = 6
    opportunistic_fraction: float = 0.6
    #: Diurnal shape (dayrun only).
    peak_to_trough: float = 4.3
    #: Fleet sizing target (dayrun only).
    target_utilization: float = 0.70
    #: Explicit fleet size (fleetrun only; ignored for dayrun).
    n_workers: int = 400
    n_shards: int = 1
    queue_backend: Optional[str] = None
    collect_traces: bool = True
    #: Run every shard under the repro.sim.simsan runtime sanitizer
    #: (bit-identical digests; cross-shard violations raise).
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.scenario not in PARSIM_SCENARIOS:
            raise ValueError(
                f"unknown parsim scenario {self.scenario!r}; "
                f"expected one of {sorted(PARSIM_SCENARIOS)}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_regions < 1:
            raise ValueError(f"n_regions must be >= 1, got {self.n_regions}")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")

    @property
    def effective_shards(self) -> int:
        """Shard count actually usable: one shard per region at most."""
        return min(self.n_shards, self.n_regions)


def partition_regions(region_names: Sequence[str],
                      n_shards: int) -> List[List[str]]:
    """Split sorted region names into contiguous, balanced shard groups.

    Shard ``i`` receives ``n // s`` regions plus one extra when
    ``i < n % s`` — group sizes differ by at most one, and the mapping
    depends only on the sorted name order.
    """
    names = sorted(region_names)
    n = len(names)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n)
    groups: List[List[str]] = []
    base, extra = divmod(n, n_shards)
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        groups.append(names[start:start + size])
        start += size
    return groups


def shard_of_region(region_names: Sequence[str], n_shards: int,
                    region: str) -> int:
    """Index of the shard owning ``region`` under :func:`partition_regions`."""
    for i, group in enumerate(partition_regions(region_names, n_shards)):
        if region in group:
            return i
    raise KeyError(f"unknown region {region!r}")
