"""ReportRim: RIM's global view rebuilt from inter-shard reports.

The serial :class:`repro.core.rim.Rim` reads every worker in the fleet
directly.  In parallel mode a shard only hosts its own regions'
workers, so each region *emits* a periodic report — utilization sum,
worker count, backlog, capacity, free threads — that is broadcast to
every region (including the emitter's own) with one **uniform** delay:
the topology's maximum cross-region latency.  Uniformity is the
determinism trick: every shard, whatever regions it owns, sees exactly
the same reports at exactly the same simulation instants, so the
replicated GTC and Utilization Controller on every shard compute and
publish identical decisions.

Application is idempotent (keyed on ``(region, sample_time)``): a shard
owning several regions receives each broadcast once per owned region
and applies it once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..metrics.recorder import MetricsRegistry
from ..metrics.timeseries import Gauge
from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub

#: Emitted per region per sample: everything the GTC / Utilization
#: Controller / analysis layer read from RIM.
Report = Tuple[float, float, int, float, float, int]
# (sample_time, sum_util, n_workers, backlog, capacity, free_threads)

SendReport = Callable[[str, Report], None]


class ReportRim:
    """Replicated RIM view fed by uniformly-delayed region reports.

    Duck-types the :class:`repro.core.rim.Rim` surface the controllers
    consume: ``regions()``, ``fleet_utilization()``,
    ``region_utilization()``, ``region_backlog()``,
    ``region_capacity()``, ``region_free_threads()``.
    """

    def __init__(self, sim: Simulator, metrics: MetricsRegistry,
                 all_regions: List[str], owned_regions: List[str],
                 send_report: SendReport,
                 sample_interval_s: float = 60.0,
                 timers: Optional[SamplerHub] = None,
                 fleet_gauge_owner: bool = False) -> None:
        self.sim = sim
        self.metrics = metrics
        self.all_regions = sorted(all_regions)
        self.owned_regions = sorted(owned_regions)
        self.send_report = send_report
        self.sample_interval_s = sample_interval_s
        self._timers = timers
        #: This shard writes the fleet-wide gauge (exactly one does).
        self.fleet_gauge_owner = fleet_gauge_owner
        self._workers_by_region: Dict[str, list] = {}
        self._durableqs_by_region: Dict[str, list] = {}
        self._schedulers_by_region: Dict[str, object] = {}
        self._capacity_by_region: Dict[str, float] = {}
        #: region -> latest applied report (the replicated global view).
        self._view: Dict[str, Report] = {}
        self._tasks: list = []
        self._fleet_gauge = (metrics.bind_gauge("fleet.utilization")
                             if fleet_gauge_owner else None)
        self._region_gauges: Dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    # Owned-region registration (mirrors core.rim.Rim)
    # ------------------------------------------------------------------
    def register_workers(self, region: str, workers: list) -> None:
        self._workers_by_region.setdefault(region, []).extend(workers)
        self._capacity_by_region[region] = sum(
            w.machine.threads
            for w in self._workers_by_region[region])
        if region not in self._region_gauges:
            self._region_gauges[region] = self.metrics.bind_gauge(
                f"region.{region}.utilization")

    def register_durableqs(self, region: str, shards: list) -> None:
        self._durableqs_by_region.setdefault(region, []).extend(shards)

    def register_scheduler(self, region: str, scheduler: object) -> None:
        self._schedulers_by_region[region] = scheduler

    def start(self) -> None:
        if self._tasks:
            raise RuntimeError("ReportRim already started")
        timers = self._timers if self._timers is not None else self.sim
        start = self.sim.now + self.sample_interval_s
        for region in self.owned_regions:
            self._tasks.append(timers.every(
                self.sample_interval_s,
                self._make_emitter(region), start=start))

    def stop(self) -> None:
        for t in self._tasks:
            t.cancel()
        self._tasks = []

    # ------------------------------------------------------------------
    # Emission (owned regions only)
    # ------------------------------------------------------------------
    def _make_emitter(self, region: str) -> Callable[[], None]:
        def emit() -> None:
            self._emit(region)
        return emit

    def _emit(self, region: str) -> None:
        now = self.sim.now
        workers = self._workers_by_region.get(region, ())
        # Taking the rolling window mutates each worker's CpuAccount —
        # same single-consumer contract as the serial Rim.
        utils = [w.take_utilization_window()  # simlint: disable=SL008 -- windows
                 for w in workers]
        sum_util = sum(utils)
        n = len(utils)
        if n:
            self._region_gauges[region].set(now, sum_util / n)
        backlog = float(sum(
            q.ready_count() for q in self._durableqs_by_region.get(region, ())))
        sched = self._schedulers_by_region.get(region)
        if sched is not None:
            backlog += sched.pending_demand
        report: Report = (now, sum_util, n, backlog,
                          self._capacity_by_region.get(region, 0.0),
                          self.region_free_threads_local(region))
        self.send_report(region, report)

    def region_free_threads_local(self, region: str) -> int:
        workers = self._workers_by_region.get(region, ())
        total = 0
        # Registration is per-region here (no shared SoA bookkeeping as
        # in core.rim), so the per-worker fallback is the primary path.
        for w in workers:  # simlint: disable=SL008 -- per-region report
            total += max(0, w.machine.threads - w.running_count)
        return total

    # ------------------------------------------------------------------
    # Application (message handler; idempotent)
    # ------------------------------------------------------------------
    def apply_report(self, region: str, report: Report) -> None:
        prev = self._view.get(region)
        if prev is not None and prev[0] >= report[0]:
            return  # duplicate broadcast copy (multi-region shard)
        self._view[region] = report
        sample_time = report[0]
        if all(r in self._view and self._view[r][0] == sample_time
               for r in self.all_regions):
            # Full sample assembled: refresh the fleet-wide gauge.
            if self._fleet_gauge is not None:
                total_workers = sum(v[2] for v in self._view.values())
                if total_workers:
                    self._fleet_gauge.set(
                        self.sim.now, self.fleet_utilization())

    # ------------------------------------------------------------------
    # Views consumed by the replicated controllers
    # ------------------------------------------------------------------
    def regions(self) -> List[str]:
        return list(self.all_regions)

    def fleet_utilization(self) -> float:
        total_util = sum(v[1] for v in self._view.values())
        total_workers = sum(v[2] for v in self._view.values())
        return total_util / total_workers if total_workers else 0.0

    def region_utilization(self, region: str) -> float:
        v = self._view.get(region)
        return (v[1] / v[2]) if v and v[2] else 0.0

    def region_backlog(self, region: str) -> float:
        v = self._view.get(region)
        return v[3] if v else 0.0

    def region_capacity(self, region: str) -> float:
        v = self._view.get(region)
        return v[4] if v else 0.0

    def region_free_threads(self, region: str) -> int:
        v = self._view.get(region)
        return int(v[5]) if v else 0
